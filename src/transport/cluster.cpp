#include "transport/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace piom::transport {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      fabric_(config.time_scale),
      shmem_(config.shmem) {}

ITransport& Cluster::transport(Backend backend) {
  switch (backend) {
    case Backend::kSimnet: return fabric_;
    case Backend::kShmem: return shmem_;
    case Backend::kTcp: return tcp_node(0);
  }
  throw std::invalid_argument("Cluster::transport: unknown backend");
}

TcpTransport& Cluster::tcp_node(int node) {
  if (node < 0) {
    throw std::invalid_argument("Cluster::tcp_node: negative node");
  }
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= tcp_nodes_.size()) tcp_nodes_.resize(idx + 1);
  if (!tcp_nodes_[idx]) {
    tcp_nodes_[idx] = std::make_unique<TcpTransport>(config_.tcp);
  }
  return *tcp_nodes_[idx];
}

std::pair<IChannel*, IChannel*> Cluster::create_pair(Backend backend,
                                                     const std::string& name) {
  switch (backend) {
    case Backend::kSimnet: return fabric_.create_channel_pair(name);
    case Backend::kShmem: return shmem_.create_channel_pair(name);
    case Backend::kTcp:
      // Two distinct nodes, so each endpoint pumps its own event loop —
      // the honest shape for "two ranks talking over a socket".
      return TcpTransport::create_loopback_pair(
          tcp_node(0), tcp_node(1), name, Endpoint::Scheme::kUds);
  }
  throw std::invalid_argument("Cluster::create_pair: unknown backend");
}

std::pair<IChannel*, IChannel*> Cluster::create_sim_link(
    const std::string& name, const simnet::LinkModel& link) {
  return fabric_.create_link(name, link);
}

Cluster::MeshWiring Cluster::create_full_mesh(
    int nodes, int rails_per_pair, const simnet::LinkModel& link,
    const std::string& prefix, const BackendPolicy& policy) {
  if (nodes < 2) {
    throw std::invalid_argument("Cluster::create_full_mesh: nodes >= 2");
  }
  if (rails_per_pair < 1) {
    throw std::invalid_argument("Cluster::create_full_mesh: rails >= 1");
  }
  policy.validate(nodes);  // reject malformed policies before wiring anything
  MeshWiring mesh(static_cast<std::size_t>(nodes));
  for (auto& row : mesh) row.resize(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    for (int j = i + 1; j < nodes; ++j) {
      wire_pair(mesh, i, j, rails_per_pair, link, prefix, policy);
    }
  }
  return mesh;
}

void Cluster::wire_pair(MeshWiring& mesh, int i, int j, int rails_per_pair,
                        const simnet::LinkModel& link,
                        const std::string& prefix,
                        const BackendPolicy& policy) {
  const std::string pair_name =
      prefix + "." + std::to_string(i) + "-" + std::to_string(j);
  auto& fwd = mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
  auto& rev = mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
  const PairWiring wiring = policy.wiring(i, j);
  if (wiring == PairWiring::kTcp || wiring == PairWiring::kUds) {
    auto [a, b] = TcpTransport::create_loopback_pair(
        tcp_node(i), tcp_node(j), pair_name + ".sock",
        wiring == PairWiring::kTcp ? Endpoint::Scheme::kTcp
                                   : Endpoint::Scheme::kUds);
    fwd.push_back(a);
    rev.push_back(b);
    return;
  }
  if (wiring != PairWiring::kSimnet) {
    // The shmem fast path is rail 0: the strategy layer sends eager
    // and control traffic on the lowest-latency rail.
    auto [a, b] = shmem_.create_channel_pair(pair_name + ".shm");
    fwd.push_back(a);
    rev.push_back(b);
  }
  if (wiring != PairWiring::kShmem) {
    for (int r = 0; r < rails_per_pair; ++r) {
      auto [a, b] =
          fabric_.create_link(pair_name + ".r" + std::to_string(r), link);
      fwd.push_back(a);
      rev.push_back(b);
    }
  }
}

void Cluster::init_lazy_mesh(int nodes, int rails_per_pair,
                             const simnet::LinkModel& link,
                             const std::string& prefix,
                             const BackendPolicy& policy) {
  if (nodes < 2) {
    throw std::invalid_argument("Cluster::init_lazy_mesh: nodes >= 2");
  }
  if (rails_per_pair < 1) {
    throw std::invalid_argument("Cluster::init_lazy_mesh: rails >= 1");
  }
  policy.validate(nodes);
  std::lock_guard<std::mutex> g(lazy_lock_);
  if (lazy_nodes_ != 0) {
    throw std::logic_error("Cluster::init_lazy_mesh: already initialised");
  }
  lazy_nodes_ = nodes;
  lazy_rails_per_pair_ = rails_per_pair;
  lazy_link_ = link;
  lazy_prefix_ = prefix;
  lazy_policy_ = policy;
  lazy_mesh_.assign(static_cast<std::size_t>(nodes), {});
  for (auto& row : lazy_mesh_) row.resize(static_cast<std::size_t>(nodes));
}

const std::vector<IChannel*>& Cluster::pair_rails(int rank, int peer) {
  if (rank == peer || rank < 0 || peer < 0 || rank >= lazy_nodes_ ||
      peer >= lazy_nodes_) {
    throw std::invalid_argument("Cluster::pair_rails: bad rank pair");
  }
  std::lock_guard<std::mutex> g(lazy_lock_);
  auto& fwd =
      lazy_mesh_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(peer)];
  if (fwd.empty()) {
    wire_pair(lazy_mesh_, std::min(rank, peer), std::max(rank, peer),
              lazy_rails_per_pair_, lazy_link_, lazy_prefix_, lazy_policy_);
  }
  return fwd;
}

const std::vector<IChannel*>* Cluster::existing_pair_rails(int rank,
                                                           int peer) const {
  if (rank == peer || rank < 0 || peer < 0 || rank >= lazy_nodes_ ||
      peer >= lazy_nodes_) {
    return nullptr;
  }
  std::lock_guard<std::mutex> g(lazy_lock_);
  const auto& fwd =
      lazy_mesh_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(peer)];
  return fwd.empty() ? nullptr : &fwd;
}

}  // namespace piom::transport
