// Cluster: the multi-backend transport owner for one process — the neutral
// factory tests, benchmarks and mpi::World program against, so nothing
// outside the simnet tests has to name a concrete transport type.
//
// One Cluster owns:
//   * a simnet::Fabric        — the modelled NIC interconnect ("simnet");
//   * a ShmemTransport        — the intra-node fast path ("shmem");
//   * per-node TcpTransports  — socket channels ("tcp"/"uds"), one event
//     loop per in-process "rank" so each side pumps its own epoll set,
//     the same shape a real multi-process rank has (see Bootstrap).
//
// create_full_mesh() wires N cluster nodes pairwise following a
// BackendPolicy — the per-pair wiring that used to live on simnet::Fabric,
// now covering the socket backends too.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/link_model.hpp"
#include "transport/channel.hpp"
#include "transport/shmem.hpp"
#include "transport/tcp.hpp"

namespace piom::transport {

struct ClusterConfig {
  /// Multiplies every modelled simnet delay (see simnet::Fabric).
  double time_scale = 1.0;
  ShmemConfig shmem{};
  TcpConfig tcp{};
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ---- backend access (ITransport faces) ----

  /// The factory for `backend` (kTcp resolves to node 0's transport).
  [[nodiscard]] ITransport& transport(Backend backend);
  [[nodiscard]] simnet::Fabric& fabric() { return fabric_; }
  [[nodiscard]] ShmemTransport& shmem() { return shmem_; }
  /// Socket transport of in-process "rank" `node` (created on first use).
  /// Each node owns its own event loop, so loopback socket pairs really
  /// exercise two independent pumps.
  [[nodiscard]] TcpTransport& tcp_node(int node);

  // ---- neutral channel factories ----

  /// Connected pair "<name>.a"/"<name>.b" on `backend` (socket pairs land
  /// on two distinct tcp nodes, one endpoint each).
  std::pair<IChannel*, IChannel*> create_pair(Backend backend,
                                              const std::string& name);
  /// Simnet pair over an explicit link model (drop rate, latency...).
  std::pair<IChannel*, IChannel*> create_sim_link(
      const std::string& name, const simnet::LinkModel& link);

  // ---- mesh construction ----

  /// mesh[i][j] = node i's rail channels towards node j (empty when i == j).
  using MeshWiring = std::vector<std::vector<std::vector<IChannel*>>>;

  /// Wire `nodes` cluster nodes into a full mesh. `policy` decides each
  /// unordered pair's wiring:
  ///   * kSimnet — `rails_per_pair` NIC links over `link`, named
  ///     "<prefix>.<i>-<j>.r<k>.{a,b}" (a = lower rank's side);
  ///   * kShmem  — one shared-memory channel, "<prefix>.<i>-<j>.shm.{a,b}";
  ///   * kHybrid — the shmem channel as rail 0, then the NIC rails;
  ///   * kTcp / kUds — one socket channel, "<prefix>.<i>-<j>.sock.{a,b}",
  ///     each endpoint on its own node's transport (rails_per_pair does
  ///     not multiply sockets: one connection per pair, like real TCP).
  /// The result satisfies mesh[i][j][k]->peer() == mesh[j][i][k]. Requires
  /// nodes >= 2, rails_per_pair >= 1 and a well-formed policy (validated
  /// before anything is created; throws std::invalid_argument otherwise).
  MeshWiring create_full_mesh(int nodes, int rails_per_pair,
                              const simnet::LinkModel& link = {},
                              const std::string& prefix = "mesh",
                              const BackendPolicy& policy = {});

  // ---- lazy pairwise wiring (sparse overlays / lazy gates) ----

  /// Declare an N-node mesh without creating any channel: pairs are wired
  /// on first pair_rails() request instead of all upfront, so a world that
  /// only ever talks along a sparse overlay pays O(active pairs), not
  /// O(N²). Same naming and per-pair wiring rules as create_full_mesh.
  void init_lazy_mesh(int nodes, int rails_per_pair,
                      const simnet::LinkModel& link = {},
                      const std::string& prefix = "mesh",
                      const BackendPolicy& policy = {});

  /// Node `rank`'s rail channels towards `peer`, creating the pair (both
  /// directions) on first request. Thread-safe; the returned reference is
  /// stable for the cluster's lifetime. Requires init_lazy_mesh.
  const std::vector<IChannel*>& pair_rails(int rank, int peer);

  /// Rails already created for (rank, peer); nullptr when the pair was
  /// never requested. Does not create anything (kill_rank's sever sweep).
  [[nodiscard]] const std::vector<IChannel*>* existing_pair_rails(
      int rank, int peer) const;

  /// Nodes declared by init_lazy_mesh (0 = eager/none).
  [[nodiscard]] int lazy_nodes() const { return lazy_nodes_; }

 private:
  /// Wire the unordered pair {i, j} (i < j) into `mesh` following
  /// `policy` — the shared body of create_full_mesh and pair_rails.
  void wire_pair(MeshWiring& mesh, int i, int j, int rails_per_pair,
                 const simnet::LinkModel& link, const std::string& prefix,
                 const BackendPolicy& policy);

  ClusterConfig config_;
  simnet::Fabric fabric_;
  ShmemTransport shmem_;
  std::vector<std::unique_ptr<TcpTransport>> tcp_nodes_;

  /// Lazy-mesh state (guarded by lazy_lock_; the outer MeshWiring vectors
  /// are sized at init and never resized, so inner-vector references stay
  /// stable across later pair creations).
  mutable std::mutex lazy_lock_;
  int lazy_nodes_ = 0;
  int lazy_rails_per_pair_ = 1;
  simnet::LinkModel lazy_link_{};
  std::string lazy_prefix_;
  BackendPolicy lazy_policy_{};
  MeshWiring lazy_mesh_;
};

}  // namespace piom::transport
