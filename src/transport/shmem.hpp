// Intra-node shared-memory transport: the "two processes on one node"
// fast path. Unlike simnet::Nic there is no engine thread and no modelled
// wire — a send publishes a descriptor {caller buffer, len, wrid} into a
// bounded lock-free SPSC ring; the receiver's poll copies the payload
// straight from the sender's buffer into the posted receive buffer
// (zero-copy: no staging hop on the matched path) and releases the
// descriptor. RDMA-Read degenerates to a direct memcpy on the caller's
// core: an intra-node "remote read" is just a load, with no NIC
// instruction round-trip.
//
// Completion protocol (the repo-wide invariant from sync/ and
// core/task.hpp): the receiver performs every touch of a descriptor
// *before* its final `done.store(release)` — the sender side polls `done`
// and may recycle the descriptor the instant it observes it set.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sync/cache.hpp"
#include "sync/spinlock.hpp"
#include "transport/channel.hpp"

namespace piom::transport {

struct ShmemConfig {
  /// Slots per direction ring (rounded up to a power of two). A full ring
  /// backpressures into an unbounded spill queue — senders never block, the
  /// ring bounds only how much is *in flight* towards the consumer.
  std::size_t ring_slots = 256;
  /// Small-message one-way latency estimate (µs) reported to the strategy
  /// layer. Ring handoff + one cache-to-cache copy: well under a µs.
  double latency_us = 0.15;
  /// Bandwidth (GB/s) reported for stripe weighting. 0 = measure the
  /// host's memcpy throughput once per process (see measured_memcpy_GBps).
  double bandwidth_GBps = 0.0;
};

class ShmemTransport;

class ShmemChannel final : public IChannel {
 public:
  ~ShmemChannel() override;
  ShmemChannel(const ShmemChannel&) = delete;
  ShmemChannel& operator=(const ShmemChannel&) = delete;

  [[nodiscard]] Backend backend() const override { return Backend::kShmem; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] ShmemChannel* peer() const override { return peer_; }

  void post_send(const void* buf, std::size_t len, uint64_t wrid) override;
  void post_recv(void* buf, std::size_t cap, uint64_t wrid) override;
  void post_rdma_read(void* local, const void* remote, std::size_t len,
                      uint64_t wrid) override;
  bool poll_tx(Completion& out) override;
  bool poll_rx(Completion& out) override;
  [[nodiscard]] ChannelStats stats() const override;
  [[nodiscard]] std::size_t tx_backlog() const override;
  void quiesce() override;

  /// Peer-dead signal for the intra-node path (see IChannel::sever).
  /// Shared memory never drops bytes, so without this hook a dead peer is
  /// indistinguishable from a slow one: severed, this endpoint completes
  /// sends without publishing them, consumes inbound descriptors without
  /// delivering, and fails RDMA reads — all without ever blocking on the
  /// (possibly gone) peer host.
  void sever() override { severed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool severed() const override {
    return severed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] double bandwidth_GBps() const override { return bandwidth_; }
  [[nodiscard]] double latency_us() const override {
    return config_.latency_us;
  }

 private:
  friend class ShmemTransport;
  ShmemChannel(std::string name, const ShmemConfig& config, double bandwidth);
  static void connect(ShmemChannel& a, ShmemChannel& b);

  /// One in-flight send, owned by the sending endpoint and recycled through
  /// its freelist. The ring carries pointers to these.
  struct Msg {
    const void* src = nullptr;
    std::size_t len = 0;
    uint64_t wrid = 0;
    /// Set by the consumer as its very LAST touch; the producer recycles
    /// the descriptor (and completes the send) once it observes 1.
    std::atomic<uint32_t> done{0};
    Msg* free_next = nullptr;
  };

  /// Bounded SPSC ring of Msg*. Producer and consumer indices live on their
  /// own cache lines so the two sides never false-share; slot publication
  /// is ordered by the release store of `head` (push) / `tail` (pop).
  /// Producer side is serialized by the owner's tx lock, consumer side by
  /// the peer's rx lock — the ring itself never takes a lock.
  struct Ring {
    explicit Ring(std::size_t slots);
    [[nodiscard]] bool try_push(Msg* m);  // producer only
    [[nodiscard]] Msg* try_pop();         // consumer only
    [[nodiscard]] std::size_t size() const;

    std::vector<Msg*> slots;  // power-of-two capacity
    std::size_t mask = 0;
    alignas(sync::kCacheLine) std::atomic<uint64_t> head{0};  // producer
    alignas(sync::kCacheLine) std::atomic<uint64_t> tail{0};  // consumer
  };

  struct RecvDesc {
    void* buf = nullptr;
    std::size_t cap = 0;
    uint64_t wrid = 0;
  };

  /// An arrival consumed with no posted receive buffer: staged copy (the
  /// sender's descriptor must be released promptly, so the zero-copy path
  /// gives way to driver-style buffering — exactly like the NIC model).
  struct StagedArrival {
    std::vector<uint8_t> data;
  };

  Msg* acquire_msg() PIOM_REQUIRES(tx_lock_);
  void release_msg(Msg* m) PIOM_REQUIRES(tx_lock_);
  /// Spill queue -> ring.
  void pump_tx_locked() PIOM_REQUIRES(tx_lock_);
  /// Locked wrapper around pump_tx_locked (peer-driven re-pump).
  void pump_tx() PIOM_EXCLUDES(tx_lock_);
  /// Done descriptors -> tx cq.
  void retire_done_sends_locked() PIOM_REQUIRES(tx_lock_);
  /// Consume every message currently in the inbound ring (deliver into
  /// posted buffers or stage copies). Serialized by rx_lock_.
  void drain_rx() PIOM_EXCLUDES(rx_lock_);

  const std::string name_;
  const ShmemConfig config_;
  const double bandwidth_;
  ShmemChannel* peer_ = nullptr;
  Ring inbound_;  ///< peer -> us; our rx side consumes, peer's tx produces

  // TX side (descriptors towards the peer + send/rdma completions).
  mutable sync::SpinLock tx_lock_;
  /// Sends that found the ring full (FIFO).
  std::deque<Msg*> spill_ PIOM_GUARDED_BY(tx_lock_);
  /// Pushed to the ring, completion pending.
  std::deque<Msg*> inflight_ PIOM_GUARDED_BY(tx_lock_);
  std::deque<Completion> tx_cq_ PIOM_GUARDED_BY(tx_lock_);
  std::atomic<std::size_t> tx_cq_size_{0};
  std::atomic<std::size_t> tx_backlog_{0};   ///< spill_.size()
  std::atomic<std::size_t> inflight_count_{0};  ///< inflight_.size()
  Msg* msg_free_ PIOM_GUARDED_BY(tx_lock_) = nullptr;
  std::vector<std::unique_ptr<Msg>> msg_storage_ PIOM_GUARDED_BY(tx_lock_);

  // RX side.
  mutable sync::SpinLock rx_lock_;
  std::deque<RecvDesc> rx_descs_ PIOM_GUARDED_BY(rx_lock_);
  std::deque<StagedArrival> staged_ PIOM_GUARDED_BY(rx_lock_);
  std::deque<Completion> rx_cq_ PIOM_GUARDED_BY(rx_lock_);
  std::atomic<std::size_t> rx_cq_size_{0};

  mutable sync::SpinLock stats_lock_;
  ChannelStats stats_ PIOM_GUARDED_BY(stats_lock_);

  std::atomic<bool> severed_{false};
};

/// Factory + owner of shmem channel pairs (one "node's memory bus").
class ShmemTransport final : public ITransport {
 public:
  explicit ShmemTransport(ShmemConfig config = {});

  [[nodiscard]] Backend backend() const override { return Backend::kShmem; }
  std::pair<IChannel*, IChannel*> create_channel_pair(
      const std::string& name) override;
  [[nodiscard]] std::size_t channel_count() const override {
    return channels_.size();
  }

  [[nodiscard]] const ShmemConfig& config() const { return config_; }

 private:
  ShmemConfig config_;
  double bandwidth_ = 0.0;
  std::vector<std::unique_ptr<ShmemChannel>> channels_;
};

/// Host memcpy throughput (GB/s), measured once per process and cached —
/// the "measured bandwidth ratio" the strategy layer stripes by when a
/// gate mixes shmem and NIC rails.
[[nodiscard]] double measured_memcpy_GBps();

}  // namespace piom::transport
