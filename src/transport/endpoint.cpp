#include "transport/endpoint.hpp"

#include <stdexcept>

namespace piom::transport {

namespace {

[[noreturn]] void bad(const std::string& uri, const char* why) {
  std::string msg = "Endpoint::parse('";
  msg += uri;
  msg += "'): ";
  msg += why;
  throw std::invalid_argument(msg);
}

}  // namespace

const char* scheme_name(Endpoint::Scheme s) {
  switch (s) {
    case Endpoint::Scheme::kTcp: return "tcp";
    case Endpoint::Scheme::kUds: return "uds";
    case Endpoint::Scheme::kShmem: return "shmem";
    case Endpoint::Scheme::kSim: return "sim";
  }
  return "?";
}

Endpoint Endpoint::parse(const std::string& uri) {
  const std::size_t sep = uri.find("://");
  if (sep == std::string::npos) {
    bad(uri, "expected '<scheme>://...' (tcp, uds, shmem or sim)");
  }
  const std::string scheme = uri.substr(0, sep);
  const std::string rest = uri.substr(sep + 3);
  Endpoint e;
  if (scheme == "tcp") {
    e.scheme = Scheme::kTcp;
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      bad(uri, "tcp needs 'tcp://host:port'");
    }
    e.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    if (port.empty()) bad(uri, "empty port");
    std::size_t pos = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(port, &pos, 10);
    } catch (const std::exception&) {
      bad(uri, "port is not a number");
    }
    if (pos != port.size()) bad(uri, "port is not a number");
    if (value > 65535) bad(uri, "port out of range");
    e.port = static_cast<uint16_t>(value);
    return e;
  }
  if (scheme == "uds") {
    e.scheme = Scheme::kUds;
    // "uds:///tmp/x" -> rest is "/tmp/x"; a relative path would silently
    // depend on each rank's cwd, so reject it.
    if (rest.empty() || rest[0] != '/') {
      bad(uri, "uds needs an absolute path: 'uds:///path'");
    }
    e.path = rest;
    return e;
  }
  if (scheme == "shmem" || scheme == "sim") {
    e.scheme = scheme == "shmem" ? Scheme::kShmem : Scheme::kSim;
    if (!rest.empty()) bad(uri, "this scheme takes no address");
    return e;
  }
  bad(uri, "unknown scheme (tcp, uds, shmem or sim)");
}

std::string Endpoint::uri() const {
  std::string out = scheme_name(scheme);
  out += "://";
  switch (scheme) {
    case Scheme::kTcp:
      out += host;
      out += ':';
      out += std::to_string(port);
      break;
    case Scheme::kUds: out += path; break;
    case Scheme::kShmem:
    case Scheme::kSim: break;
  }
  return out;
}

}  // namespace piom::transport
