#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "sync/backoff.hpp"
#include "util/log.hpp"

namespace piom::transport {

namespace {

constexpr int kIovBatch = 16;   ///< frames coalesced per sendmsg
constexpr int kMaxEvents = 64;  ///< poller events handled per pump

/// Setup-time hello, sent raw (outside channel framing) right after a data
/// connection is established, so accept() can tell which rank connected.
struct Hello {
  uint32_t magic = 0x70696f6d;  // "piom"
  uint32_t rank = 0;
};

[[noreturn]] void sys_fail(const char* what) {
  std::string msg = "tcp transport: ";
  msg += what;
  msg += ": ";
  msg += std::strerror(errno);
  throw std::runtime_error(msg);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Eager latency rides small frames; Nagle would batch them with the ACK
  // clock. Failure is non-fatal (some socket types reject the option).
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking write of exactly `len` bytes (setup path only).
void write_full(int fd, const void* buf, std::size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("setup write");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Blocking read of exactly `len` bytes with a deadline (setup path only).
void read_full(int fd, void* buf, std::size_t len, int64_t deadline_ms) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    pollfd pfd{fd, POLLIN, 0};
    const int64_t left = deadline_ms - now_ms();
    if (left <= 0) throw std::runtime_error("tcp transport: setup read timeout");
    const int pr = ::poll(&pfd, 1, static_cast<int>(left < 100 ? left : 100));
    if (pr < 0 && errno != EINTR) sys_fail("setup poll");
    if (pr <= 0) continue;
    const ssize_t n = ::read(fd, p, len);
    if (n == 0) throw std::runtime_error("tcp transport: peer closed during setup");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      sys_fail("setup read");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

sockaddr_in make_inet_addr(const std::string& host, uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &sa.sin_addr) != 1) {
    throw std::invalid_argument("tcp transport: host must be a numeric IPv4 "
                                "address (got '" + host + "')");
  }
  return sa;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    throw std::invalid_argument("tcp transport: uds path too long: " + path);
  }
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  return sa;
}

}  // namespace

// ---------------------------------------------------------------- channel

TcpChannel::TcpChannel(TcpTransport& owner, std::string name, int fd,
                       bool uds)
    : owner_(owner), name_(std::move(name)), fd_(fd), uds_(uds) {}

TcpChannel::~TcpChannel() { ::close(fd_); }

double TcpChannel::bandwidth_GBps() const {
  return owner_.config_.bandwidth_GBps;
}

double TcpChannel::latency_us() const {
  return uds_ ? owner_.config_.uds_latency_us : owner_.config_.tcp_latency_us;
}

void TcpChannel::post_send(const void* buf, std::size_t len, uint64_t wrid) {
  if (len > owner_.config_.max_frame_bytes || len > UINT32_MAX) {
    throw std::invalid_argument("TcpChannel::post_send: frame too large");
  }
  if (severed()) {
    // Drop-model drain: complete without touching the wire (or `buf`).
    {
      sync::LockGuard<sync::SpinLock> s(stats_lock_);
      ++stats_.packets_dropped;
    }
    sync::LockGuard<sync::SpinLock> g(tx_lock_);
    tx_cq_.push_back(Completion{Completion::Kind::kSend, wrid, len, false});
    tx_cq_size_.fetch_add(1, std::memory_order_release);
    return;
  }
  SendOp op{};
  FrameHeader hdr;
  hdr.len = static_cast<uint32_t>(len);
  hdr.kind = static_cast<uint8_t>(FrameKind::kData);
  std::memcpy(op.head, &hdr, sizeof(hdr));
  op.head_len = sizeof(hdr);
  op.payload = buf;
  op.payload_len = len;
  op.wrid = wrid;
  op.completes_send = true;
  sync::LockGuard<sync::SpinLock> g(tx_lock_);
  txq_.push_back(op);
  tx_pending_.fetch_add(1, std::memory_order_release);
  tx_data_backlog_.fetch_add(1, std::memory_order_release);
  flush_tx_locked();  // opportunistic: small frames leave immediately
}

void TcpChannel::drain_staged_locked() {
  while (!staged_.empty() && !rx_descs_.empty()) {
    std::vector<uint8_t> data = std::move(staged_.front());
    staged_.pop_front();
    const RecvDesc d = rx_descs_.front();
    rx_descs_.pop_front();
    const std::size_t n = data.size() < d.cap ? data.size() : d.cap;
    if (n > 0) std::memcpy(d.buf, data.data(), n);
    rx_cq_.push_back(Completion{Completion::Kind::kRecv, d.wrid, n, false});
    rx_cq_size_.fetch_add(1, std::memory_order_release);
  }
}

void TcpChannel::post_recv(void* buf, std::size_t cap, uint64_t wrid) {
  sync::LockGuard<sync::SpinLock> g(rx_lock_);
  if (!staged_.empty()) {
    // A frame arrived before this buffer was posted: deliver the staged
    // copy now (same late-post semantics as the NIC model and shmem).
    std::vector<uint8_t> data = std::move(staged_.front());
    staged_.pop_front();
    const std::size_t n = data.size() < cap ? data.size() : cap;
    if (n > 0) std::memcpy(buf, data.data(), n);
    rx_cq_.push_back(Completion{Completion::Kind::kRecv, wrid, n, false});
    rx_cq_size_.fetch_add(1, std::memory_order_release);
    return;
  }
  rx_descs_.push_back(RecvDesc{buf, cap, wrid});
}

void TcpChannel::post_rdma_read(void* local, const void* remote,
                                std::size_t len, uint64_t wrid) {
  if (severed()) {
    sync::LockGuard<sync::SpinLock> g(tx_lock_);
    tx_cq_.push_back(Completion{Completion::Kind::kRdmaRead, wrid, 0, true});
    tx_cq_size_.fetch_add(1, std::memory_order_release);
    return;
  }
  const uint64_t req_id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  {
    sync::LockGuard<sync::SpinLock> g(rx_lock_);
    pending_rdma_[req_id] = PendingRdma{local, len, wrid};
    pending_rdma_count_.fetch_add(1, std::memory_order_release);
  }
  SendOp op{};
  FrameHeader hdr;
  hdr.len = sizeof(RdmaReqMeta);
  hdr.kind = static_cast<uint8_t>(FrameKind::kRdmaReq);
  RdmaReqMeta meta;
  meta.req_id = req_id;
  meta.raddr = reinterpret_cast<uint64_t>(remote);
  meta.len = len;
  std::memcpy(op.head, &hdr, sizeof(hdr));
  std::memcpy(op.head + sizeof(hdr), &meta, sizeof(meta));
  op.head_len = sizeof(hdr) + sizeof(meta);
  sync::LockGuard<sync::SpinLock> g(tx_lock_);
  txq_.push_back(op);
  tx_pending_.fetch_add(1, std::memory_order_release);
  flush_tx_locked();
}

void TcpChannel::complete_data_send_locked(const SendOp& op) {
  tx_cq_.push_back(
      Completion{Completion::Kind::kSend, op.wrid, op.payload_len, false});
  tx_cq_size_.fetch_add(1, std::memory_order_release);
}

int TcpChannel::flush_tx() {
  sync::LockGuard<sync::SpinLock> g(tx_lock_);
  return flush_tx_locked();
}

int TcpChannel::flush_tx_locked() {
  int events = 0;
  const bool is_dead = dead_.load(std::memory_order_acquire);
  const bool is_severed = severed_.load(std::memory_order_acquire);
  if (is_dead || is_severed) {
    // Drain without writing — except: a partially-written frame must be
    // finished (dropping half a frame would desync the peer's parser),
    // and a merely-severed endpoint still sends queued kRdmaResp frames
    // (teardown NACKs keep a live peer's read from hanging forever).
    std::deque<SendOp> keep;
    std::size_t dropped = 0;
    for (SendOp& op : txq_) {
      const bool is_resp =
          op.head[4] == static_cast<uint8_t>(FrameKind::kRdmaResp);
      if (!is_dead && (op.written > 0 || is_resp)) {
        keep.push_back(op);
        continue;
      }
      if (op.completes_send) {
        complete_data_send_locked(op);
        tx_data_backlog_.fetch_sub(1, std::memory_order_release);
        ++dropped;
        ++events;
      }
    }
    txq_.swap(keep);
    tx_pending_.store(txq_.size(), std::memory_order_release);
    if (dropped > 0) {
      sync::LockGuard<sync::SpinLock> s(stats_lock_);
      stats_.packets_dropped += dropped;
    }
    if (is_dead || txq_.empty()) return events;
  }
  while (!txq_.empty()) {
    iovec iov[kIovBatch];
    int cnt = 0;
    for (const SendOp& op : txq_) {
      if (cnt + 2 > kIovBatch) break;
      const std::size_t head_done =
          op.written < op.head_len ? op.written : op.head_len;
      if (op.head_len - head_done > 0) {
        iov[cnt].iov_base = const_cast<uint8_t*>(op.head) + head_done;
        iov[cnt].iov_len = op.head_len - head_done;
        ++cnt;
      }
      const std::size_t pay_done =
          op.written > op.head_len ? op.written - op.head_len : 0;
      if (op.payload_len - pay_done > 0) {
        iov[cnt].iov_base =
            const_cast<uint8_t*>(static_cast<const uint8_t*>(op.payload)) +
            pay_done;
        iov[cnt].iov_len = op.payload_len - pay_done;
        ++cnt;
      }
    }
    if (cnt == 0) break;
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(cnt);
    const ssize_t n = ::sendmsg(fd_, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      dead_.store(true, std::memory_order_release);
      events += flush_tx_locked();  // re-enter: the dead branch drains
      break;
    }
    std::size_t left = static_cast<std::size_t>(n);
    std::size_t requested = 0;
    for (int i = 0; i < cnt; ++i) requested += iov[i].iov_len;
    while (left > 0 && !txq_.empty()) {
      SendOp& front = txq_.front();
      const std::size_t total = front.head_len + front.payload_len;
      const std::size_t take =
          left < total - front.written ? left : total - front.written;
      front.written += take;
      left -= take;
      if (front.written == total) {
        if (front.completes_send) {
          complete_data_send_locked(front);
          tx_data_backlog_.fetch_sub(1, std::memory_order_release);
          sync::LockGuard<sync::SpinLock> s(stats_lock_);
          ++stats_.packets_tx;
          stats_.bytes_tx += front.payload_len;
        }
        txq_.pop_front();
        tx_pending_.fetch_sub(1, std::memory_order_release);
        ++events;
      }
    }
    if (static_cast<std::size_t>(n) < requested) break;  // kernel buffer full
  }
  return events;
}

void TcpChannel::sever() {
  severed_.store(true, std::memory_order_release);
  drain_disconnected();
}

void TcpChannel::mark_dead() {
  dead_.store(true, std::memory_order_release);
  drain_disconnected();
}

void TcpChannel::drain_disconnected() {
  // Fail this side's outstanding RDMA reads (their responses will never
  // arrive, or would be NACKed anyway), then drain the send queue.
  std::vector<Completion> fails;
  {
    sync::LockGuard<sync::SpinLock> g(rx_lock_);
    for (const auto& entry : pending_rdma_) {
      fails.push_back(Completion{Completion::Kind::kRdmaRead,
                                 entry.second.wrid, 0, true});
    }
    pending_rdma_.clear();
    pending_rdma_count_.store(0, std::memory_order_release);
  }
  sync::LockGuard<sync::SpinLock> g(tx_lock_);
  for (const Completion& c : fails) {
    tx_cq_.push_back(c);
    tx_cq_size_.fetch_add(1, std::memory_order_release);
  }
  flush_tx_locked();
}

bool TcpChannel::poll_tx(Completion& out) {
  owner_.pump();
  if (severed()) {
    drain_disconnected();
  } else if (peer_ != nullptr && &peer_->owner_ != &owner_ &&
             (tx_data_backlog_.load(std::memory_order_acquire) != 0 ||
              pending_rdma_count_.load(std::memory_order_acquire) != 0)) {
    // Loopback backpressure: our kernel buffer only empties if the other
    // in-process side reads — and an RDMA read only completes if the
    // other side serves the request. Pump its transport — the socket form
    // of the shmem invariant that a spinning sender must not need the
    // receiving host to poll first.
    peer_->owner_.pump();
  }
  if (tx_cq_size_.load(std::memory_order_acquire) == 0) return false;
  sync::LockGuard<sync::SpinLock> g(tx_lock_);
  if (tx_cq_.empty()) return false;
  out = tx_cq_.front();
  tx_cq_.pop_front();
  tx_cq_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

bool TcpChannel::poll_rx(Completion& out) {
  owner_.pump();
  if (severed()) {
    drain_disconnected();
  } else if (peer_ != nullptr && &peer_->owner_ != &owner_ &&
             peer_->tx_data_backlog_.load(std::memory_order_acquire) != 0) {
    // Loopback mirror of the poll_tx invariant: a spinning receiver must
    // not need the in-process sender to poll before its user-space
    // backlog (frames past the kernel buffer) reaches the wire.
    peer_->owner_.pump();
  }
  if (rx_cq_size_.load(std::memory_order_acquire) == 0) return false;
  sync::LockGuard<sync::SpinLock> g(rx_lock_);
  if (rx_cq_.empty()) return false;
  out = rx_cq_.front();
  rx_cq_.pop_front();
  rx_cq_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

ChannelStats TcpChannel::stats() const {
  sync::LockGuard<sync::SpinLock> g(stats_lock_);
  return stats_;
}

std::size_t TcpChannel::tx_backlog() const {
  return tx_data_backlog_.load(std::memory_order_acquire);
}

void TcpChannel::quiesce() {
  sync::Backoff backoff;
  for (;;) {
    owner_.pump();
    if (peer_ != nullptr && &peer_->owner_ != &owner_) peer_->owner_.pump();
    if (severed()) drain_disconnected();
    if (tx_pending_.load(std::memory_order_acquire) == 0 &&
        pending_rdma_count_.load(std::memory_order_acquire) == 0) {
      return;
    }
    backoff.spin();
  }
}

// ---- receive-side frame parser (owner-pump serialized) ----

bool TcpChannel::begin_frame_body() {
  const auto kind = static_cast<FrameKind>(rx_hdr_.kind);
  rx_body_got_ = 0;
  rx_scratch_got_ = 0;
  switch (kind) {
    case FrameKind::kData: {
      if (rx_hdr_.len == 0) {
        // Zero-byte message: complete right here, no body to read. Funnel
        // through staged_ + drain so it cannot overtake an older staged
        // arrival (or be overtaken by one).
        if (!severed()) {
          sync::LockGuard<sync::SpinLock> g(rx_lock_);
          staged_.emplace_back();
          drain_staged_locked();
          sync::LockGuard<sync::SpinLock> s(stats_lock_);
          ++stats_.packets_rx;
        }
        rx_stage_ = RxStage::kHeader;
        return true;
      }
      if (severed()) {
        rx_stage_ = RxStage::kDataDiscard;
        return false;
      }
      // Direct zero-copy delivery only when it cannot reorder: no older
      // staged arrival ahead of this frame, and the descriptor is big
      // enough. Otherwise the frame goes through staged_ and leaves via
      // drain_staged_locked() in FIFO order (truncating like shmem does).
      sync::LockGuard<sync::SpinLock> g(rx_lock_);
      if (staged_.empty() && !rx_descs_.empty() &&
          rx_descs_.front().cap >= rx_hdr_.len) {
        rx_desc_ = rx_descs_.front();
        rx_descs_.pop_front();
        rx_stage_ = RxStage::kDataDirect;
      } else {
        rx_staged_.assign(rx_hdr_.len, 0);
        rx_stage_ = RxStage::kDataStaged;
      }
      return false;
    }
    case FrameKind::kRdmaReq:
      if (rx_hdr_.len != sizeof(RdmaReqMeta)) {
        mark_dead();
        return false;
      }
      rx_stage_ = RxStage::kRdmaReqBody;
      return false;
    case FrameKind::kRdmaResp:
      if (rx_hdr_.len < sizeof(RdmaRespMeta)) {
        mark_dead();
        return false;
      }
      rx_stage_ = RxStage::kRdmaRespMeta;
      return false;
  }
  mark_dead();  // unknown frame kind: the stream is garbage
  return false;
}

void TcpChannel::serve_rdma_request(const RdmaReqMeta& req) {
  // The requested range is in OUR memory (the peer got the pointer from
  // our RTS). Zero-copy serve: point the frame's payload straight at it —
  // the rendezvous contract keeps the buffer valid until FIN, and FIN can
  // only follow this response. A severed endpoint NACKs instead.
  const bool ok = !severed() && req.len <= owner_.config_.max_frame_bytes;
  SendOp op{};
  FrameHeader hdr;
  hdr.len = static_cast<uint32_t>(sizeof(RdmaRespMeta) + (ok ? req.len : 0));
  hdr.kind = static_cast<uint8_t>(FrameKind::kRdmaResp);
  RdmaRespMeta meta;
  meta.req_id = req.req_id;
  meta.ok = ok ? 1 : 0;
  std::memcpy(op.head, &hdr, sizeof(hdr));
  std::memcpy(op.head + sizeof(hdr), &meta, sizeof(meta));
  op.head_len = sizeof(hdr) + sizeof(meta);
  if (ok) {
    op.payload = reinterpret_cast<const void*>(
        static_cast<uintptr_t>(req.raddr));
    op.payload_len = req.len;
    sync::LockGuard<sync::SpinLock> s(stats_lock_);
    ++stats_.rdma_reads_served;
  }
  sync::LockGuard<sync::SpinLock> g(tx_lock_);
  txq_.push_back(op);
  tx_pending_.fetch_add(1, std::memory_order_release);
  flush_tx_locked();
}

void TcpChannel::complete_rdma_resp_meta() {
  std::memcpy(&rx_resp_meta_, rx_scratch_, sizeof(rx_resp_meta_));
  const std::size_t body = rx_hdr_.len - sizeof(RdmaRespMeta);
  bool have_pending = false;
  PendingRdma pending{};
  {
    sync::LockGuard<sync::SpinLock> g(rx_lock_);
    const auto it = pending_rdma_.find(rx_resp_meta_.req_id);
    if (it != pending_rdma_.end()) {
      have_pending = true;
      pending = it->second;
      pending_rdma_.erase(it);
      pending_rdma_count_.fetch_sub(1, std::memory_order_release);
    }
  }
  if (!have_pending || rx_resp_meta_.ok == 0 || body != pending.len) {
    // Late response (the read already failed via sever), a NACK, or a
    // length the requester never asked for: sink the body, fail the read.
    if (have_pending) {
      sync::LockGuard<sync::SpinLock> g(tx_lock_);
      tx_cq_.push_back(
          Completion{Completion::Kind::kRdmaRead, pending.wrid, 0, true});
      tx_cq_size_.fetch_add(1, std::memory_order_release);
    }
    rx_body_got_ = 0;
    rx_stage_ = body > 0 ? RxStage::kRdmaRespSink : RxStage::kHeader;
    return;
  }
  if (body == 0) {
    sync::LockGuard<sync::SpinLock> g(tx_lock_);
    tx_cq_.push_back(
        Completion{Completion::Kind::kRdmaRead, pending.wrid, 0, false});
    tx_cq_size_.fetch_add(1, std::memory_order_release);
    rx_stage_ = RxStage::kHeader;
    return;
  }
  rx_resp_dst_ = pending;
  rx_body_got_ = 0;
  rx_stage_ = RxStage::kRdmaRespBody;
}

void TcpChannel::finish_frame() {
  switch (rx_stage_) {
    case RxStage::kDataDirect: {
      {
        sync::LockGuard<sync::SpinLock> g(rx_lock_);
        rx_cq_.push_back(Completion{Completion::Kind::kRecv, rx_desc_.wrid,
                                    rx_hdr_.len, false});
        rx_cq_size_.fetch_add(1, std::memory_order_release);
      }
      sync::LockGuard<sync::SpinLock> s(stats_lock_);
      ++stats_.packets_rx;
      stats_.bytes_rx += rx_hdr_.len;
      break;
    }
    case RxStage::kDataStaged: {
      {
        // A descriptor may have been posted while this frame's body was
        // still in flight (post_recv only drains *completed* staged
        // arrivals): deliver now, or the next frame would go direct and
        // overtake this one.
        sync::LockGuard<sync::SpinLock> g(rx_lock_);
        staged_.push_back(std::move(rx_staged_));
        drain_staged_locked();
      }
      rx_staged_ = std::vector<uint8_t>();
      sync::LockGuard<sync::SpinLock> s(stats_lock_);
      ++stats_.packets_rx;
      stats_.bytes_rx += rx_hdr_.len;
      break;
    }
    case RxStage::kDataDiscard: {
      sync::LockGuard<sync::SpinLock> s(stats_lock_);
      ++stats_.packets_dropped;
      break;
    }
    case RxStage::kRdmaReqBody: {
      RdmaReqMeta req;
      std::memcpy(&req, rx_scratch_, sizeof(req));
      serve_rdma_request(req);
      break;
    }
    case RxStage::kRdmaRespBody: {
      sync::LockGuard<sync::SpinLock> g(tx_lock_);
      tx_cq_.push_back(Completion{Completion::Kind::kRdmaRead,
                                  rx_resp_dst_.wrid, rx_resp_dst_.len,
                                  false});
      tx_cq_size_.fetch_add(1, std::memory_order_release);
      break;
    }
    case RxStage::kRdmaRespSink:
    case RxStage::kRdmaRespMeta:
    case RxStage::kHeader:
      break;  // handled by their own transitions
  }
  rx_stage_ = RxStage::kHeader;
  rx_scratch_got_ = 0;
  rx_body_got_ = 0;
}

int TcpChannel::handle_readable() {
  int events = 0;
  uint8_t sink[4096];
  for (;;) {
    void* dst = nullptr;
    std::size_t want = 0;
    switch (rx_stage_) {
      case RxStage::kHeader:
        dst = rx_scratch_ + rx_scratch_got_;
        want = sizeof(FrameHeader) - rx_scratch_got_;
        break;
      case RxStage::kRdmaReqBody:
        dst = rx_scratch_ + rx_scratch_got_;
        want = sizeof(RdmaReqMeta) - rx_scratch_got_;
        break;
      case RxStage::kRdmaRespMeta:
        dst = rx_scratch_ + rx_scratch_got_;
        want = sizeof(RdmaRespMeta) - rx_scratch_got_;
        break;
      case RxStage::kDataDirect:
        dst = static_cast<uint8_t*>(rx_desc_.buf) + rx_body_got_;
        want = rx_hdr_.len - rx_body_got_;
        break;
      case RxStage::kDataStaged:
        dst = rx_staged_.data() + rx_body_got_;
        want = rx_hdr_.len - rx_body_got_;
        break;
      case RxStage::kRdmaRespBody: {
        const std::size_t body = rx_hdr_.len - sizeof(RdmaRespMeta);
        dst = static_cast<uint8_t*>(rx_resp_dst_.local) + rx_body_got_;
        want = body - rx_body_got_;
        break;
      }
      case RxStage::kDataDiscard:
      case RxStage::kRdmaRespSink: {
        const std::size_t body =
            rx_stage_ == RxStage::kDataDiscard
                ? rx_hdr_.len
                : rx_hdr_.len - sizeof(RdmaRespMeta);
        const std::size_t rem = body - rx_body_got_;
        dst = sink;
        want = rem < sizeof(sink) ? rem : sizeof(sink);
        break;
      }
    }
    const ssize_t n = ::read(fd_, dst, want);
    if (n == 0) {
      mark_dead();
      return events;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      mark_dead();
      return events;
    }
    const std::size_t got = static_cast<std::size_t>(n);
    switch (rx_stage_) {
      case RxStage::kHeader:
        rx_scratch_got_ += got;
        if (rx_scratch_got_ == sizeof(FrameHeader)) {
          std::memcpy(&rx_hdr_, rx_scratch_, sizeof(rx_hdr_));
          rx_scratch_got_ = 0;
          if (rx_hdr_.len > owner_.config_.max_frame_bytes) {
            PIOM_LOG_WARN("tcp channel %s: insane frame length %u, killing "
                          "connection",
                          name_.c_str(), rx_hdr_.len);
            mark_dead();
            return events;
          }
          if (begin_frame_body()) ++events;  // zero-length fast path
        }
        break;
      case RxStage::kRdmaReqBody:
      case RxStage::kRdmaRespMeta: {
        rx_scratch_got_ += got;
        const std::size_t need = rx_stage_ == RxStage::kRdmaReqBody
                                     ? sizeof(RdmaReqMeta)
                                     : sizeof(RdmaRespMeta);
        if (rx_scratch_got_ == need) {
          if (rx_stage_ == RxStage::kRdmaReqBody) {
            finish_frame();
          } else {
            rx_scratch_got_ = 0;
            complete_rdma_resp_meta();
          }
          ++events;
        }
        break;
      }
      case RxStage::kDataDirect:
      case RxStage::kDataStaged:
        rx_body_got_ += got;
        if (rx_body_got_ == rx_hdr_.len) {
          finish_frame();
          ++events;
        }
        break;
      case RxStage::kRdmaRespBody:
        rx_body_got_ += got;
        if (rx_body_got_ == rx_hdr_.len - sizeof(RdmaRespMeta)) {
          finish_frame();
          ++events;
        }
        break;
      case RxStage::kDataDiscard:
        rx_body_got_ += got;
        if (rx_body_got_ == rx_hdr_.len) finish_frame();
        break;
      case RxStage::kRdmaRespSink:
        rx_body_got_ += got;
        if (rx_body_got_ == rx_hdr_.len - sizeof(RdmaRespMeta)) {
          finish_frame();
        }
        break;
    }
  }
  return events;
}

// -------------------------------------------------------------- transport

TcpTransport::TcpTransport(TcpConfig config) : config_(config) {}

TcpTransport::~TcpTransport() {
  sync::LockGuard<sync::MutexLock> pump_guard(pump_lock_);
  sync::LockGuard<sync::MutexLock> g(state_lock_);
  for (const auto& ch : channels_) poller_.remove(ch->fd_);
  channels_.clear();  // closes the fds
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

TcpChannel* TcpTransport::adopt_fd(int fd, std::string name, bool uds) {
  set_nonblocking(fd);
  if (!uds) set_nodelay(fd);
  auto ch = std::unique_ptr<TcpChannel>(
      new TcpChannel(*this, std::move(name), fd, uds));
  TcpChannel* raw = ch.get();
  // The poller's bookkeeping is only touched under pump_lock_ (wait() runs
  // inside pump(), add() here) so registration never races the event loop.
  sync::LockGuard<sync::MutexLock> pump_guard(pump_lock_);
  {
    sync::LockGuard<sync::MutexLock> g(state_lock_);
    channels_.push_back(std::move(ch));
  }
  poller_.add(fd, raw);
  return raw;
}

void TcpTransport::snapshot_channels(std::vector<TcpChannel*>& out) const {
  sync::LockGuard<sync::MutexLock> g(state_lock_);
  out.reserve(channels_.size());
  for (const auto& ch : channels_) out.push_back(ch.get());
}

std::size_t TcpTransport::channel_count() const {
  sync::LockGuard<sync::MutexLock> g(state_lock_);
  return channels_.size();
}

std::pair<IChannel*, IChannel*> TcpTransport::create_channel_pair(
    const std::string& name) {
  return create_loopback_pair(*this, *this, name, Endpoint::Scheme::kUds);
}

std::pair<IChannel*, IChannel*> TcpTransport::create_loopback_pair(
    TcpTransport& ta, TcpTransport& tb, const std::string& name,
    Endpoint::Scheme scheme) {
  int fd_a = -1;
  int fd_b = -1;
  if (scheme == Endpoint::Scheme::kUds) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      sys_fail("socketpair");
    }
    fd_a = sv[0];
    fd_b = sv[1];
  } else if (scheme == Endpoint::Scheme::kTcp) {
    // A real TCP connection through 127.0.0.1, so loopback "tcp" pairs
    // exercise (and cost) the genuine inet stack, not just a socketpair.
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (lfd < 0) sys_fail("socket");
    sockaddr_in sa = make_inet_addr("127.0.0.1", 0);
    if (::bind(lfd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(lfd, 1) != 0) {
      ::close(lfd);
      sys_fail("bind/listen(127.0.0.1)");
    }
    socklen_t slen = sizeof(sa);
    if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&sa), &slen) != 0) {
      ::close(lfd);
      sys_fail("getsockname");
    }
    fd_a = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_a < 0) {
      ::close(lfd);
      sys_fail("socket");
    }
    if (::connect(fd_a, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(lfd);
      ::close(fd_a);
      sys_fail("connect(127.0.0.1)");
    }
    fd_b = ::accept(lfd, nullptr, nullptr);
    ::close(lfd);
    if (fd_b < 0) {
      ::close(fd_a);
      sys_fail("accept");
    }
  } else {
    throw std::invalid_argument(
        "TcpTransport::create_loopback_pair: scheme must be tcp or uds");
  }
  const bool uds = scheme == Endpoint::Scheme::kUds;
  TcpChannel* a = ta.adopt_fd(fd_a, name + ".a", uds);
  TcpChannel* b = tb.adopt_fd(fd_b, name + ".b", uds);
  a->peer_ = b;
  b->peer_ = a;
  return {a, b};
}

void TcpTransport::listen(const Endpoint& addr) {
  sync::LockGuard<sync::MutexLock> g(state_lock_);
  if (listen_fd_ >= 0) {
    throw std::logic_error("TcpTransport::listen: already listening");
  }
  if (addr.scheme == Endpoint::Scheme::kTcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = make_inet_addr(addr.host, addr.port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(fd, config_.listen_backlog) != 0) {
      ::close(fd);
      sys_fail("bind/listen");
    }
    socklen_t slen = sizeof(sa);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &slen) != 0) {
      ::close(fd);
      sys_fail("getsockname");
    }
    listen_fd_ = fd;
    listen_addr_ = Endpoint::tcp(addr.host, ntohs(sa.sin_port));
    return;
  }
  if (addr.scheme == Endpoint::Scheme::kUds) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    sockaddr_un sa = make_unix_addr(addr.path);
    (void)::unlink(addr.path.c_str());  // stale socket file from a crash
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(fd, config_.listen_backlog) != 0) {
      ::close(fd);
      sys_fail("bind/listen(uds)");
    }
    listen_fd_ = fd;
    listen_addr_ = addr;
    unlink_path_ = addr.path;
    return;
  }
  throw std::invalid_argument(
      "TcpTransport::listen: address must be tcp:// or uds://");
}

const Endpoint& TcpTransport::listen_endpoint() const {
  sync::LockGuard<sync::MutexLock> g(state_lock_);
  if (listen_fd_ < 0) {
    throw std::logic_error("TcpTransport::listen_endpoint: not listening");
  }
  return listen_addr_;
}

std::vector<IChannel*> TcpTransport::connect_mesh(
    int my_rank, const std::vector<Endpoint>& table) {
  const int n = static_cast<int>(table.size());
  if (my_rank < 0 || my_rank >= n) {
    throw std::invalid_argument("TcpTransport::connect_mesh: bad rank");
  }
  const int64_t deadline =
      now_ms() + static_cast<int64_t>(config_.connect_timeout_s * 1000.0);
  std::vector<IChannel*> out(static_cast<std::size_t>(n), nullptr);
  // Connect to every lower rank. Lower ranks finish their own (lower)
  // connects first, then sit in accept — so this ordering cannot cycle.
  for (int peer = 0; peer < my_rank; ++peer) {
    const Endpoint& ep = table[static_cast<std::size_t>(peer)];
    int fd = -1;
    for (;;) {
      if (ep.scheme == Endpoint::Scheme::kTcp) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) sys_fail("socket");
        sockaddr_in sa = make_inet_addr(ep.host, ep.port);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) ==
            0) {
          break;
        }
      } else if (ep.scheme == Endpoint::Scheme::kUds) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) sys_fail("socket");
        sockaddr_un sa = make_unix_addr(ep.path);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) ==
            0) {
          break;
        }
      } else {
        throw std::invalid_argument(
            "TcpTransport::connect_mesh: table entries must be tcp/uds");
      }
      // Peer not up yet (cluster processes start in arbitrary order).
      ::close(fd);
      if (now_ms() >= deadline) {
        throw std::runtime_error("TcpTransport::connect_mesh: timeout "
                                 "connecting to rank " +
                                 std::to_string(peer));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    Hello hello;
    hello.rank = static_cast<uint32_t>(my_rank);
    write_full(fd, &hello, sizeof(hello));
    const std::string name = "tcp." + std::to_string(peer) + "-" +
                             std::to_string(my_rank) + ".b";
    out[static_cast<std::size_t>(peer)] =
        adopt_fd(fd, name, ep.scheme == Endpoint::Scheme::kUds);
  }
  // Accept from every higher rank (identified by its hello).
  int outstanding = n - my_rank - 1;
  const bool uds = listen_endpoint().scheme == Endpoint::Scheme::kUds;
  // Snapshot the listener fd once: it is written under state_lock_ (and
  // listen_endpoint() above has already proven it exists), but the accept
  // loop must not read the field without the lock.
  int lfd = -1;
  {
    sync::LockGuard<sync::MutexLock> g(state_lock_);
    lfd = listen_fd_;
  }
  while (outstanding > 0) {
    pollfd pfd{lfd, POLLIN, 0};
    const int64_t left = deadline - now_ms();
    if (left <= 0) {
      throw std::runtime_error(
          "TcpTransport::connect_mesh: timeout waiting for peers");
    }
    const int pr = ::poll(&pfd, 1, static_cast<int>(left < 100 ? left : 100));
    if (pr < 0 && errno != EINTR) sys_fail("poll(listen)");
    if (pr <= 0) continue;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      sys_fail("accept");
    }
    Hello hello;
    read_full(fd, &hello, sizeof(hello), deadline);
    const int peer = static_cast<int>(hello.rank);
    if (hello.magic != Hello{}.magic || peer <= my_rank || peer >= n ||
        out[static_cast<std::size_t>(peer)] != nullptr) {
      PIOM_LOG_WARN("tcp transport: dropping bogus data connection "
                    "(hello rank %d)",
                    peer);
      ::close(fd);
      continue;
    }
    const std::string name = "tcp." + std::to_string(my_rank) + "-" +
                             std::to_string(peer) + ".a";
    out[static_cast<std::size_t>(peer)] = adopt_fd(fd, name, uds);
    --outstanding;
  }
  return out;
}

int TcpTransport::pump() {
  if (!pump_lock_.try_lock()) return 0;
  sync::LockGuard<sync::MutexLock> guard(pump_lock_, sync::kAdoptLock);
  int events = 0;
  aio::FdPoller::Event evs[kMaxEvents];
  const int n = poller_.wait(evs, kMaxEvents, 0);
  for (int i = 0; i < n; ++i) {
    auto* ch = static_cast<TcpChannel*>(evs[i].tag);
    if (ch == nullptr) continue;
    if (evs[i].readable) {
      events += ch->handle_readable();
    } else if (evs[i].hangup) {
      ch->mark_dead();
    }
  }
  // Flush pass: frames may have been queued by threads that lost the pump
  // try-lock, or unblocked by what we just read.
  std::vector<TcpChannel*> chans;
  snapshot_channels(chans);
  for (TcpChannel* ch : chans) {
    if (ch->tx_pending_.load(std::memory_order_acquire) != 0) {
      events += ch->flush_tx();
    }
  }
  return events;
}

}  // namespace piom::transport
