// Socket transport: the backend that lets ranks live in separate OS
// processes — per-peer nonblocking stream sockets (TCP inter-node,
// Unix-domain same-host) behind the IChannel/ITransport interface.
//
// Wire format: length-prefixed frames, {u32 len, u8 kind, pad[3]} then the
// body. kData carries one posted send (one nmad packet — PR 7's detached
// aggregation chains pack upstream of the channel, so one frame may hold
// many messages, and the frame queue itself coalesces into a single
// sendmsg/writev per flush). RDMA-Read is emulated with a request/response
// frame pair: the side that owns the memory serves kRdmaReq from its pump
// by pointing an iovec straight at the requested range (the rendezvous
// protocol keeps that buffer valid until FIN, which can only follow the
// response), and the requester reads the response body directly into the
// destination buffer — one kernel->user copy per direction, no staging.
//
// Progress model: there is NO dedicated IO thread. Each TcpTransport owns
// an aio::FdPoller (epoll; poll(2) off Linux) and a pump() that any caller
// may drive — a try-lock keeps one pumper at a time. Channel poll_tx/
// poll_rx call pump(), so PIOMan's background poll tasks tick the event
// loop and the caller-driven engines pump it from wait/test, exactly like
// every other backend. The shmem invariant "delivery must not require the
// receiving host to poll" carries over in socket form: a send completes
// when its bytes reach the kernel (sent != delivered, the drop-model
// contract), and when the socket buffer backpressures an in-process
// loopback pair, the sender's poll_tx also pumps the peer's transport so a
// spinning sender drains the other side instead of deadlocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "aio/fd_poll.hpp"
#include "sync/spinlock.hpp"
#include "transport/channel.hpp"
#include "transport/endpoint.hpp"

namespace piom::transport {

struct TcpConfig {
  /// Rail properties reported to the strategy layer. Loopback sockets have
  /// no modelled wire; these estimates rank socket rails below shmem for
  /// eager selection (and TCP below UDS), which is what hybrid gates want.
  double tcp_latency_us = 15.0;
  double uds_latency_us = 8.0;
  double bandwidth_GBps = 2.0;
  int listen_backlog = 64;
  /// Frame-length sanity cap: a length prefix above this kills the
  /// connection (a corrupt or misframed stream must not allocate GBs).
  std::size_t max_frame_bytes = 1u << 30;
  /// Seconds setup-time connect/accept loops keep retrying (ranks of a
  /// multi-process cluster start in arbitrary order).
  double connect_timeout_s = 30.0;
};

class TcpTransport;

class TcpChannel final : public IChannel {
 public:
  ~TcpChannel() override;
  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  [[nodiscard]] Backend backend() const override { return Backend::kTcp; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  /// Set for in-process loopback pairs; null when the peer endpoint lives
  /// in another process (there is no object to point at).
  [[nodiscard]] TcpChannel* peer() const override { return peer_; }
  /// A TcpChannel only exists over an established socket.
  [[nodiscard]] bool connected() const override { return true; }

  void post_send(const void* buf, std::size_t len, uint64_t wrid) override;
  void post_recv(void* buf, std::size_t cap, uint64_t wrid) override;
  void post_rdma_read(void* local, const void* remote, std::size_t len,
                      uint64_t wrid) override;
  bool poll_tx(Completion& out) override;
  bool poll_rx(Completion& out) override;
  [[nodiscard]] ChannelStats stats() const override;
  [[nodiscard]] std::size_t tx_backlog() const override;
  void quiesce() override;

  /// Cut off the wire (fault injection / connection teardown). Queued and
  /// future sends drain with ordinary unfailed completions (sent never
  /// meant delivered), inbound data frames are discarded, this side's RDMA
  /// reads fail — and inbound RDMA requests are answered with a NACK
  /// response so a live peer's read fails instead of hanging. A socket
  /// error/EOF (peer process died) degrades into the same state.
  void sever() override;
  [[nodiscard]] bool severed() const override {
    return severed_.load(std::memory_order_acquire) ||
           dead_.load(std::memory_order_acquire);
  }

  [[nodiscard]] double bandwidth_GBps() const override;
  [[nodiscard]] double latency_us() const override;

  /// True for Unix-domain sockets (same-host), false for TCP.
  [[nodiscard]] bool is_uds() const { return uds_; }
  [[nodiscard]] TcpTransport& owner() const { return owner_; }

 private:
  friend class TcpTransport;

  enum class FrameKind : uint8_t {
    kData = 1,      ///< one posted send
    kRdmaReq = 2,   ///< body: RdmaReqMeta — "read your memory for me"
    kRdmaResp = 3,  ///< body: RdmaRespMeta + the bytes (when ok)
  };

  struct FrameHeader {
    uint32_t len = 0;  ///< body bytes following this header
    uint8_t kind = 0;
    uint8_t pad[3] = {};
  };
  static_assert(sizeof(FrameHeader) == 8, "wire format");

  struct RdmaReqMeta {
    uint64_t req_id = 0;
    uint64_t raddr = 0;  ///< address in the *serving* side's memory
    uint64_t len = 0;
  };
  static_assert(sizeof(RdmaReqMeta) == 24, "wire format");

  struct RdmaRespMeta {
    uint64_t req_id = 0;
    uint32_t ok = 0;  ///< 0: NACK (severed server), no bytes follow
    uint32_t pad = 0;
  };
  static_assert(sizeof(RdmaRespMeta) == 16, "wire format");

  /// One queued outbound frame: a serialized head (header + any meta) and
  /// an optional zero-copy payload pointer (the caller's send buffer, or
  /// the served memory range of an RDMA response).
  struct SendOp {
    uint8_t head[sizeof(FrameHeader) + sizeof(RdmaReqMeta)];
    std::size_t head_len = 0;
    const void* payload = nullptr;
    std::size_t payload_len = 0;
    std::size_t written = 0;  ///< progress over head + payload
    uint64_t wrid = 0;
    bool completes_send = false;  ///< kData: emit kSend when fully written
  };

  struct RecvDesc {
    void* buf = nullptr;
    std::size_t cap = 0;
    uint64_t wrid = 0;
  };

  /// Outstanding RDMA read posted by this side, keyed by req_id.
  struct PendingRdma {
    void* local = nullptr;
    std::size_t len = 0;
    uint64_t wrid = 0;
  };

  /// Receive-parser state. Only the owning transport's pump touches it
  /// (pump() is serialized by a try-lock), so it needs no lock of its own.
  enum class RxStage : uint8_t {
    kHeader,        ///< accumulating the 8-byte frame header
    kDataDirect,    ///< kData body -> posted receive buffer (zero staging)
    kDataStaged,    ///< kData body -> staged copy (no buffer posted)
    kDataDiscard,   ///< kData body -> bit bucket (severed)
    kRdmaReqBody,   ///< 24-byte request meta
    kRdmaRespMeta,  ///< 16-byte response meta
    kRdmaRespBody,  ///< response bytes -> requester's destination buffer
    kRdmaRespSink,  ///< response bytes with no pending request (late/failed)
  };

  TcpChannel(TcpTransport& owner, std::string name, int fd, bool uds);

  /// Read until EAGAIN/EOF, advancing the frame parser. Owner-pump only.
  int handle_readable();
  /// Write queued frames (single sendmsg over up to kIovBatch iovecs).
  int flush_tx();
  int flush_tx_locked() PIOM_REQUIRES(tx_lock_);
  void complete_data_send_locked(const SendOp& op) PIOM_REQUIRES(tx_lock_);
  /// Socket died (EOF, ECONNRESET, EPIPE...): drain everything that can
  /// no longer complete normally.
  void mark_dead();
  /// Sweep queued sends / pending RDMA reads once the channel is severed
  /// or dead — they complete (dropped) or fail instead of hanging.
  void drain_disconnected();
  void finish_frame();
  bool begin_frame_body();
  /// Deliver staged arrivals into posted descriptors, oldest-first with
  /// shmem's truncation semantics. rx_lock_ must be held. Every arrival
  /// that cannot go direct funnels through staged_ and leaves through
  /// here, so per-channel FIFO survives a descriptor posted mid-frame.
  void drain_staged_locked() PIOM_REQUIRES(rx_lock_);
  void serve_rdma_request(const RdmaReqMeta& req);
  void complete_rdma_resp_meta();

  TcpTransport& owner_;
  const std::string name_;
  const int fd_;
  const bool uds_;
  TcpChannel* peer_ = nullptr;  ///< loopback pairs only

  std::atomic<bool> severed_{false};
  std::atomic<bool> dead_{false};

  // TX side: queued frames + send/rdma completions. The fd is only ever
  // written under tx_lock_. Lock order: rx_lock_ may be taken before
  // tx_lock_, never the other way around.
  mutable sync::SpinLock tx_lock_;
  std::deque<SendOp> txq_ PIOM_GUARDED_BY(tx_lock_);
  std::deque<Completion> tx_cq_ PIOM_GUARDED_BY(tx_lock_);
  std::atomic<std::size_t> tx_cq_size_{0};
  std::atomic<std::size_t> tx_pending_{0};  ///< txq_.size()
  std::atomic<std::size_t> tx_data_backlog_{0};  ///< unsent kData frames

  // RX side: posted buffers, staged arrivals, recv completions and this
  // side's outstanding RDMA reads.
  mutable sync::SpinLock rx_lock_;
  std::deque<RecvDesc> rx_descs_ PIOM_GUARDED_BY(rx_lock_);
  std::deque<std::vector<uint8_t>> staged_ PIOM_GUARDED_BY(rx_lock_);
  std::deque<Completion> rx_cq_ PIOM_GUARDED_BY(rx_lock_);
  std::atomic<std::size_t> rx_cq_size_{0};
  std::unordered_map<uint64_t, PendingRdma> pending_rdma_
      PIOM_GUARDED_BY(rx_lock_);
  std::atomic<std::size_t> pending_rdma_count_{0};
  std::atomic<uint64_t> next_req_id_{1};

  // Frame parser (owner-pump serialized; see RxStage).
  RxStage rx_stage_ = RxStage::kHeader;
  uint8_t rx_scratch_[sizeof(RdmaReqMeta)] = {};
  std::size_t rx_scratch_got_ = 0;
  FrameHeader rx_hdr_{};
  std::size_t rx_body_got_ = 0;
  RecvDesc rx_desc_{};              ///< kDataDirect target
  std::vector<uint8_t> rx_staged_;  ///< kDataStaged accumulator
  RdmaRespMeta rx_resp_meta_{};
  PendingRdma rx_resp_dst_{};       ///< kRdmaRespBody target

  mutable sync::SpinLock stats_lock_;
  ChannelStats stats_ PIOM_GUARDED_BY(stats_lock_);
};

/// Factory + event loop for socket channels. One instance per "process
/// side": each in-process rank of a loopback mesh owns its own transport
/// (its own epoll set), and a real multi-process rank owns exactly one,
/// wired to its peers by Bootstrap (transport/bootstrap.hpp).
class TcpTransport final : public ITransport {
 public:
  explicit TcpTransport(TcpConfig config = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  [[nodiscard]] Backend backend() const override { return Backend::kTcp; }
  /// In-process pair over a Unix socketpair; both endpoints pumped here.
  std::pair<IChannel*, IChannel*> create_channel_pair(
      const std::string& name) override;
  [[nodiscard]] std::size_t channel_count() const override;

  /// Loopback pair across two transports (two in-process "ranks", each
  /// pumping its own side — the shape World uses for socket meshes).
  /// kUds: socketpair. kTcp: a real 127.0.0.1 listen/connect/accept.
  /// Other schemes throw.
  static std::pair<IChannel*, IChannel*> create_loopback_pair(
      TcpTransport& ta, TcpTransport& tb, const std::string& name,
      Endpoint::Scheme scheme);

  // ---- multi-process wiring (driven by transport::Bootstrap) ----

  /// Bind + listen for peer data connections on `addr` (tcp://host:port
  /// with port 0 = ephemeral, or uds:///path). Once per transport.
  void listen(const Endpoint& addr);
  /// The actual bound address (ephemeral port / path resolved) — this is
  /// what Bootstrap advertises in the endpoint table.
  [[nodiscard]] const Endpoint& listen_endpoint() const;
  /// Establish this rank's per-peer data channels given everyone's listen
  /// endpoints: connect to every lower rank (announcing ourselves with a
  /// hello frame), accept from every higher rank (identified by theirs).
  /// Returns channels indexed by peer rank (self slot null). Blocking;
  /// throws std::runtime_error on timeout.
  std::vector<IChannel*> connect_mesh(int my_rank,
                                      const std::vector<Endpoint>& table);

  /// Drive the event loop once, non-blocking: collect readable sockets
  /// from the poller, advance their frame parsers, flush pending frames.
  /// Safe from any thread; a try-lock keeps one pumper at a time (others
  /// return immediately — their completions were already queued for them).
  int pump();

  [[nodiscard]] const TcpConfig& config() const { return config_; }

 private:
  friend class TcpChannel;

  TcpChannel* adopt_fd(int fd, std::string name, bool uds);
  void snapshot_channels(std::vector<TcpChannel*>& out) const;

  TcpConfig config_;
  aio::FdPoller poller_;
  sync::MutexLock pump_lock_;
  mutable sync::MutexLock state_lock_;  ///< channels_ + listener fields
  std::vector<std::unique_ptr<TcpChannel>> channels_
      PIOM_GUARDED_BY(state_lock_);
  int listen_fd_ PIOM_GUARDED_BY(state_lock_) = -1;
  /// Deliberately unannotated: listen_endpoint() returns a const& to it
  /// (it is written once, before any reader can exist).
  Endpoint listen_addr_{};
  /// uds listener socket file, removed in dtor.
  std::string unlink_path_ PIOM_GUARDED_BY(state_lock_);
};

}  // namespace piom::transport
