#include "transport/bootstrap.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"

namespace piom::transport {

namespace {

constexpr uint32_t kMagic = 0x62747370;  // "btsp"

[[noreturn]] void sys_fail(const char* what) {
  std::string msg = "Bootstrap: ";
  msg += what;
  msg += ": ";
  msg += std::strerror(errno);
  throw std::runtime_error(msg);
}

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void write_full(int fd, const void* buf, std::size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_fail("control write");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void read_full(int fd, void* buf, std::size_t len, int64_t deadline_ms) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    pollfd pfd{fd, POLLIN, 0};
    const int64_t left = deadline_ms - now_ms();
    if (left <= 0) throw std::runtime_error("Bootstrap: control read timeout");
    const int pr = ::poll(&pfd, 1, static_cast<int>(left < 100 ? left : 100));
    if (pr < 0 && errno != EINTR) sys_fail("control poll");
    if (pr <= 0) continue;
    const ssize_t n = ::read(fd, p, len);
    if (n == 0) {
      throw std::runtime_error("Bootstrap: peer closed the control socket");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      sys_fail("control read");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

void write_string(int fd, const std::string& s) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  write_full(fd, &len, sizeof(len));
  write_full(fd, s.data(), s.size());
}

std::string read_string(int fd, int64_t deadline_ms) {
  uint32_t len = 0;
  read_full(fd, &len, sizeof(len), deadline_ms);
  if (len > 4096) {
    throw std::runtime_error("Bootstrap: implausible control string length");
  }
  std::string s(len, '\0');
  if (len > 0) read_full(fd, s.data(), len, deadline_ms);
  return s;
}

/// Control listener on `addr` (blocking socket, used once).
int control_listen(const Endpoint& addr, int backlog) {
  if (addr.scheme == Endpoint::Scheme::kTcp) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    const std::string host =
        addr.host == "localhost" ? "127.0.0.1" : addr.host;
    if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
      ::close(fd);
      throw std::invalid_argument(
          "Bootstrap: root host must be a numeric IPv4 address");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(fd, backlog) != 0) {
      ::close(fd);
      sys_fail("bind/listen(control)");
    }
    return fd;
  }
  if (addr.scheme == Endpoint::Scheme::kUds) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path)) {
      ::close(fd);
      throw std::invalid_argument("Bootstrap: uds path too long");
    }
    std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    (void)::unlink(addr.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
        ::listen(fd, backlog) != 0) {
      ::close(fd);
      sys_fail("bind/listen(control uds)");
    }
    return fd;
  }
  throw std::invalid_argument("Bootstrap: root address must be tcp:// or uds://");
}

/// Connect to the root's control listener, retrying until the deadline
/// (the root process may not have bound yet).
int control_connect(const Endpoint& addr, int64_t deadline_ms) {
  for (;;) {
    int fd = -1;
    bool connected = false;
    if (addr.scheme == Endpoint::Scheme::kTcp) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) sys_fail("socket");
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_port = htons(addr.port);
      const std::string host =
          addr.host == "localhost" ? "127.0.0.1" : addr.host;
      if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
        ::close(fd);
        throw std::invalid_argument(
            "Bootstrap: root host must be a numeric IPv4 address");
      }
      connected =
          ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0;
    } else if (addr.scheme == Endpoint::Scheme::kUds) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) sys_fail("socket");
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      if (addr.path.size() >= sizeof(sa.sun_path)) {
        ::close(fd);
        throw std::invalid_argument("Bootstrap: uds path too long");
      }
      std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
      connected =
          ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0;
    } else {
      throw std::invalid_argument(
          "Bootstrap: root address must be tcp:// or uds://");
    }
    if (connected) return fd;
    ::close(fd);
    if (now_ms() >= deadline_ms) {
      throw std::runtime_error(
          "Bootstrap: timeout connecting to root at " + addr.uri());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// This rank's data listener address, derived from the root address.
Endpoint data_listen_addr(const Endpoint& root_addr, int rank) {
  if (root_addr.scheme == Endpoint::Scheme::kUds) {
    return Endpoint::uds(root_addr.path + ".r" + std::to_string(rank));
  }
  // Ephemeral port; the resolved endpoint is what gets advertised. Binding
  // the root's host keeps everything on the same interface (this repo runs
  // single-machine — a multi-host deployment would advertise a public
  // address here).
  return Endpoint::tcp(root_addr.host, 0);
}

}  // namespace

Bootstrap Bootstrap::root(int nranks, const Endpoint& listen_addr,
                          TcpConfig config) {
  if (nranks < 2) throw std::invalid_argument("Bootstrap::root: nranks >= 2");
  const int64_t deadline =
      now_ms() + static_cast<int64_t>(config.connect_timeout_s * 1000.0);
  auto transport = std::make_unique<TcpTransport>(config);
  transport->listen(data_listen_addr(listen_addr, 0));

  std::vector<Endpoint> table(static_cast<std::size_t>(nranks));
  table[0] = transport->listen_endpoint();
  const int control_fd = control_listen(listen_addr, nranks);
  std::vector<int> joiner_fd(static_cast<std::size_t>(nranks), -1);
  int outstanding = nranks - 1;
  try {
    while (outstanding > 0) {
      pollfd pfd{control_fd, POLLIN, 0};
      const int64_t left = deadline - now_ms();
      if (left <= 0) {
        throw std::runtime_error(
            "Bootstrap::root: timeout waiting for joiners");
      }
      const int pr =
          ::poll(&pfd, 1, static_cast<int>(left < 100 ? left : 100));
      if (pr < 0 && errno != EINTR) sys_fail("poll(control)");
      if (pr <= 0) continue;
      const int fd = ::accept(control_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        sys_fail("accept(control)");
      }
      uint32_t magic = 0;
      uint32_t rank = 0;
      read_full(fd, &magic, sizeof(magic), deadline);
      read_full(fd, &rank, sizeof(rank), deadline);
      const std::string uri = read_string(fd, deadline);
      if (magic != kMagic || rank == 0 ||
          rank >= static_cast<uint32_t>(nranks) ||
          joiner_fd[rank] != -1) {
        ::close(fd);
        throw std::runtime_error("Bootstrap::root: bogus joiner hello");
      }
      table[rank] = Endpoint::parse(uri);
      joiner_fd[rank] = fd;
      --outstanding;
    }
    // Everyone checked in: broadcast the table (count, then the entries in
    // rank order), then hang up.
    for (int r = 1; r < nranks; ++r) {
      const int jfd = joiner_fd[static_cast<std::size_t>(r)];
      const uint32_t count = static_cast<uint32_t>(nranks);
      write_full(jfd, &count, sizeof(count));
      for (const Endpoint& ep : table) write_string(jfd, ep.uri());
    }
  } catch (...) {
    for (const int fd : joiner_fd) {
      if (fd >= 0) ::close(fd);
    }
    ::close(control_fd);
    throw;
  }
  for (const int fd : joiner_fd) {
    if (fd >= 0) ::close(fd);
  }
  ::close(control_fd);
  if (listen_addr.scheme == Endpoint::Scheme::kUds) {
    (void)::unlink(listen_addr.path.c_str());
  }
  std::vector<IChannel*> channels = transport->connect_mesh(0, table);
  return Bootstrap(0, nranks, std::move(transport), std::move(table),
                   std::move(channels));
}

Bootstrap Bootstrap::join(int rank, const Endpoint& root_addr,
                          TcpConfig config) {
  if (rank < 1) throw std::invalid_argument("Bootstrap::join: rank >= 1");
  const int64_t deadline =
      now_ms() + static_cast<int64_t>(config.connect_timeout_s * 1000.0);
  auto transport = std::make_unique<TcpTransport>(config);
  transport->listen(data_listen_addr(root_addr, rank));

  const int fd = control_connect(root_addr, deadline);
  std::vector<Endpoint> table;
  try {
    const uint32_t magic = kMagic;
    const uint32_t r = static_cast<uint32_t>(rank);
    write_full(fd, &magic, sizeof(magic));
    write_full(fd, &r, sizeof(r));
    write_string(fd, transport->listen_endpoint().uri());
    // The root answers — once every rank has checked in — with the table:
    // a count, then everyone's endpoint URI in rank order.
    uint32_t count = 0;
    read_full(fd, &count, sizeof(count), deadline);
    if (count < 2 || rank >= static_cast<int>(count) || count > 4096) {
      throw std::runtime_error("Bootstrap::join: bogus table size");
    }
    table.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      table.push_back(Endpoint::parse(read_string(fd, deadline)));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  const int nranks = static_cast<int>(table.size());
  std::vector<IChannel*> channels = transport->connect_mesh(rank, table);
  return Bootstrap(rank, nranks, std::move(transport), std::move(table),
                   std::move(channels));
}

Bootstrap Bootstrap::from_env(TcpConfig config) {
  const int64_t rank = util::env::integer("PIOM_RANK", -1);
  const int64_t nranks = util::env::integer("PIOM_NRANKS", -1);
  const std::string root_uri = util::env::str("PIOM_ROOT_ADDR", "");
  if (rank < 0 || nranks < 2 || root_uri.empty()) {
    throw std::runtime_error(
        "Bootstrap::from_env: $PIOM_RANK, $PIOM_NRANKS and $PIOM_ROOT_ADDR "
        "must be set (run under piom_launch)");
  }
  const Endpoint root_addr = Endpoint::parse(root_uri);
  if (rank == 0) {
    return root(static_cast<int>(nranks), root_addr, config);
  }
  return join(static_cast<int>(rank), root_addr, config);
}

}  // namespace piom::transport
