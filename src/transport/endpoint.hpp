// Endpoint: the transport-addressing half of the backend API. Everything a
// process needs to reach a rank is one URI string:
//
//   tcp://host:port   — TCP socket (inter-node; port 0 = ephemeral)
//   uds:///path       — Unix-domain socket (same-host processes)
//   shmem://          — intra-process shared-memory rings (no address)
//   sim://            — the modelled simnet NIC (no address)
//
// The socket schemes are real listen/connect addresses (Bootstrap exchanges
// them out-of-band); shmem:// and sim:// only name in-process backends so
// policy code can speak one vocabulary for all four.
#pragma once

#include <cstdint>
#include <string>

namespace piom::transport {

struct Endpoint {
  enum class Scheme : uint8_t { kTcp, kUds, kShmem, kSim };

  Scheme scheme = Scheme::kSim;
  std::string host;   ///< tcp only
  uint16_t port = 0;  ///< tcp only (0 = let the kernel pick)
  std::string path;   ///< uds only (absolute filesystem path)

  /// Parse a URI. Throws std::invalid_argument on junk: unknown scheme,
  /// missing host/port, non-numeric or out-of-range port, relative or
  /// empty uds path, address where none is allowed.
  [[nodiscard]] static Endpoint parse(const std::string& uri);

  /// Canonical URI string (round-trips through parse()).
  [[nodiscard]] std::string uri() const;

  /// True for the schemes that name a real socket address.
  [[nodiscard]] bool is_socket() const {
    return scheme == Scheme::kTcp || scheme == Scheme::kUds;
  }

  [[nodiscard]] static Endpoint tcp(std::string host, uint16_t port) {
    Endpoint e;
    e.scheme = Scheme::kTcp;
    e.host = std::move(host);
    e.port = port;
    return e;
  }
  [[nodiscard]] static Endpoint uds(std::string path) {
    Endpoint e;
    e.scheme = Scheme::kUds;
    e.path = std::move(path);
    return e;
  }
};

[[nodiscard]] const char* scheme_name(Endpoint::Scheme s);

}  // namespace piom::transport
