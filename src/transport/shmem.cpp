#include "transport/shmem.hpp"

#include <cstring>
#include <stdexcept>

#include "sync/backoff.hpp"
#include "util/timing.hpp"

namespace piom::transport {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

double measured_memcpy_GBps() {
  // One probe per process: the ratio between this and the NIC link models
  // is what the stripe split uses, so a coarse single measurement is fine.
  static const double measured = [] {
    constexpr std::size_t kProbeBytes = 4u << 20;
    std::vector<uint8_t> src(kProbeBytes, 0x5A);
    std::vector<uint8_t> dst(kProbeBytes);
    double best_GBps = 0.0;
    for (int round = 0; round < 3; ++round) {
      const int64_t t0 = util::now_ns();
      std::memcpy(dst.data(), src.data(), kProbeBytes);
      const int64_t dt = util::now_ns() - t0;
      if (dt > 0) {
        const double gbps = static_cast<double>(kProbeBytes) /
                            static_cast<double>(dt);  // bytes/ns == GB/s
        if (gbps > best_GBps) best_GBps = gbps;
      }
    }
    // Clamp against clock glitches and instrumentation (sanitizer builds
    // slow memcpy severalfold): any intra-node memory bus beats the
    // modelled NICs, so the floor must stay above the default LinkModel's
    // 1.25 GB/s — the "shmem is the fast rail" invariant the strategy
    // layer relies on. 500 GB/s is a generous cap.
    if (best_GBps < 4.0) best_GBps = 4.0;
    if (best_GBps > 500.0) best_GBps = 500.0;
    return best_GBps;
  }();
  return measured;
}

// ----------------------------------------------------------------- Ring

ShmemChannel::Ring::Ring(std::size_t slots_count) {
  const std::size_t cap = round_up_pow2(slots_count < 2 ? 2 : slots_count);
  slots.assign(cap, nullptr);
  mask = cap - 1;
}

bool ShmemChannel::Ring::try_push(Msg* m) {
  const uint64_t h = head.load(std::memory_order_relaxed);
  if (h - tail.load(std::memory_order_acquire) >= slots.size()) {
    return false;  // full: caller spills (bounded ring = backpressure)
  }
  slots[h & mask] = m;
  head.store(h + 1, std::memory_order_release);
  return true;
}

ShmemChannel::Msg* ShmemChannel::Ring::try_pop() {
  const uint64_t t = tail.load(std::memory_order_relaxed);
  if (head.load(std::memory_order_acquire) == t) return nullptr;
  Msg* m = slots[t & mask];
  tail.store(t + 1, std::memory_order_release);
  return m;
}

std::size_t ShmemChannel::Ring::size() const {
  const uint64_t h = head.load(std::memory_order_acquire);
  const uint64_t t = tail.load(std::memory_order_acquire);
  return h >= t ? static_cast<std::size_t>(h - t) : 0;
}

// ---------------------------------------------------------------- channel

ShmemChannel::ShmemChannel(std::string name, const ShmemConfig& config,
                           double bandwidth)
    : name_(std::move(name)),
      config_(config),
      bandwidth_(bandwidth),
      inbound_(config.ring_slots) {}

ShmemChannel::~ShmemChannel() = default;

void ShmemChannel::connect(ShmemChannel& a, ShmemChannel& b) {
  a.peer_ = &b;
  b.peer_ = &a;
}

ShmemChannel::Msg* ShmemChannel::acquire_msg() {
  Msg* m = msg_free_;
  if (m != nullptr) {
    msg_free_ = m->free_next;
    m->free_next = nullptr;
    m->done.store(0, std::memory_order_relaxed);
    return m;
  }
  msg_storage_.push_back(std::make_unique<Msg>());
  return msg_storage_.back().get();
}

void ShmemChannel::release_msg(Msg* m) {
  m->src = nullptr;
  m->len = 0;
  m->free_next = msg_free_;
  msg_free_ = m;
}

void ShmemChannel::pump_tx_locked() {
  while (!spill_.empty() && peer_->inbound_.try_push(spill_.front())) {
    spill_.pop_front();
  }
  tx_backlog_.store(spill_.size(), std::memory_order_release);
}

void ShmemChannel::retire_done_sends_locked() {
  while (!inflight_.empty() &&
         inflight_.front()->done.load(std::memory_order_acquire) != 0) {
    Msg* m = inflight_.front();
    inflight_.pop_front();
    inflight_count_.fetch_sub(1, std::memory_order_release);
    tx_cq_.push_back(Completion{Completion::Kind::kSend, m->wrid, m->len});
    tx_cq_size_.fetch_add(1, std::memory_order_release);
    release_msg(m);
  }
}

void ShmemChannel::post_send(const void* buf, std::size_t len,
                             uint64_t wrid) {
  if (peer_ == nullptr) {
    throw std::logic_error("ShmemChannel::post_send: unconnected");
  }
  if (severed()) {
    // Dead endpoint: the send completes without ever being published —
    // unfailed, like the NIC drop model ("sent" never means "delivered").
    // Completing directly also keeps this path peer-independent: nothing
    // is enqueued that would need the (possibly gone) peer to consume it.
    tx_lock_.lock();
    tx_cq_.push_back(Completion{Completion::Kind::kSend, wrid, len});
    tx_cq_size_.fetch_add(1, std::memory_order_release);
    tx_lock_.unlock();
    stats_lock_.lock();
    stats_.packets_dropped++;
    stats_lock_.unlock();
    return;
  }
  tx_lock_.lock();
  Msg* m = acquire_msg();
  m->src = buf;
  m->len = len;
  m->wrid = wrid;
  inflight_.push_back(m);
  inflight_count_.fetch_add(1, std::memory_order_release);
  // FIFO across the spill boundary: the ring only ever takes the oldest
  // not-yet-published descriptor.
  pump_tx_locked();
  if (!spill_.empty() || !peer_->inbound_.try_push(m)) {
    spill_.push_back(m);
    tx_backlog_.store(spill_.size(), std::memory_order_release);
  }
  tx_lock_.unlock();
  stats_lock_.lock();
  stats_.packets_tx++;
  stats_.bytes_tx += len;
  stats_lock_.unlock();
}

void ShmemChannel::post_recv(void* buf, std::size_t cap, uint64_t wrid) {
  rx_lock_.lock();
  if (!staged_.empty()) {
    StagedArrival arrival = std::move(staged_.front());
    staged_.pop_front();
    const std::size_t n = std::min(cap, arrival.data.size());
    if (n > 0) std::memcpy(buf, arrival.data.data(), n);
    rx_cq_.push_back(Completion{Completion::Kind::kRecv, wrid, n});
    rx_cq_size_.fetch_add(1, std::memory_order_release);
    rx_lock_.unlock();
    return;
  }
  rx_descs_.push_back(RecvDesc{buf, cap, wrid});
  rx_lock_.unlock();
}

void ShmemChannel::post_rdma_read(void* local, const void* remote,
                                  std::size_t len, uint64_t wrid) {
  if (peer_ == nullptr) {
    throw std::logic_error("ShmemChannel::post_rdma_read: unconnected");
  }
  // Intra-node "RDMA" is a plain load/store pass on the calling core: no
  // engine round-trip, no modelled wire time. On a severed channel (either
  // end) the read must not touch the peer's memory — the failed completion
  // is the caller's only signal.
  const bool read_failed = severed() || peer_->severed();
  if (!read_failed) {
    if (len > 0) std::memcpy(local, remote, len);
    peer_->stats_lock_.lock();
    peer_->stats_.rdma_reads_served++;
    peer_->stats_lock_.unlock();
  }
  stats_lock_.lock();
  stats_.packets_tx++;  // the read request
  if (!read_failed) stats_.bytes_rx += len;
  stats_lock_.unlock();
  tx_lock_.lock();
  tx_cq_.push_back(
      Completion{Completion::Kind::kRdmaRead, wrid, len, read_failed});
  tx_cq_size_.fetch_add(1, std::memory_order_release);
  tx_lock_.unlock();
}

bool ShmemChannel::poll_tx(Completion& out) {
  // Lock-free emptiness pre-check for hot poll loops: nothing completed,
  // nothing in flight, nothing spilled -> nothing to do.
  if (tx_cq_size_.load(std::memory_order_acquire) == 0 &&
      tx_backlog_.load(std::memory_order_acquire) == 0 &&
      inflight_count_.load(std::memory_order_acquire) == 0) {
    return false;
  }
  // Sends must complete without the peer's host polling (the NIC model's
  // DMA property — caller-driven engines depend on it): the poller of the
  // TX side drives delivery of its published descriptors itself. The rx
  // lock serializes this against the peer's own pollers.
  if (inflight_count_.load(std::memory_order_acquire) != 0) {
    peer_->drain_rx();
  }
  tx_lock_.lock();
  pump_tx_locked();
  retire_done_sends_locked();
  if (tx_cq_.empty()) {
    tx_lock_.unlock();
    return false;
  }
  out = tx_cq_.front();
  tx_cq_.pop_front();
  tx_cq_size_.fetch_sub(1, std::memory_order_release);
  tx_lock_.unlock();
  return true;
}

void ShmemChannel::drain_rx() {
  rx_lock_.lock();
  for (;;) {
    Msg* m = inbound_.try_pop();
    if (m == nullptr) break;
    const std::size_t len = m->len;
    if (severed()) {
      // Dead endpoint: consume the descriptor (so the producer's pipeline
      // keeps draining and its quiesce terminates) but deliver nothing.
      m->done.store(1, std::memory_order_release);
      stats_lock_.lock();
      stats_.packets_dropped++;
      stats_lock_.unlock();
      continue;
    }
    if (!rx_descs_.empty()) {
      // Zero-copy fast path: payload goes straight from the sender's
      // buffer into the posted receive buffer.
      RecvDesc desc = rx_descs_.front();
      rx_descs_.pop_front();
      const std::size_t n = std::min(desc.cap, len);
      if (n > 0) std::memcpy(desc.buf, m->src, n);
      rx_cq_.push_back(Completion{Completion::Kind::kRecv, desc.wrid, n});
      rx_cq_size_.fetch_add(1, std::memory_order_release);
    } else {
      // No buffer posted: stage a copy so the sender's descriptor (and
      // buffer) can be released now.
      StagedArrival arrival;
      if (len > 0) {
        arrival.data.assign(static_cast<const uint8_t*>(m->src),
                            static_cast<const uint8_t*>(m->src) + len);
      }
      staged_.push_back(std::move(arrival));
    }
    // Completion protocol: this release store is the consumer's final
    // touch — the producer may recycle `m` the instant it observes it.
    m->done.store(1, std::memory_order_release);
    stats_lock_.lock();
    stats_.packets_rx++;
    stats_.bytes_rx += len;
    stats_lock_.unlock();
  }
  rx_lock_.unlock();
}

void ShmemChannel::pump_tx() {
  tx_lock_.lock();
  pump_tx_locked();
  tx_lock_.unlock();
}

bool ShmemChannel::poll_rx(Completion& out) {
  // A full ring backpressured the peer into its spill queue; a NIC engine
  // would keep feeding the wire as the queue drains, so the consumer side
  // re-pumps the producer here — without it, a receiver polling a drained
  // ring against an idle sender would wait forever.
  if (peer_ != nullptr &&
      peer_->tx_backlog_.load(std::memory_order_acquire) != 0) {
    peer_->pump_tx();
  }
  if (rx_cq_size_.load(std::memory_order_acquire) == 0 &&
      inbound_.size() == 0) {
    return false;
  }
  drain_rx();
  rx_lock_.lock();
  if (rx_cq_.empty()) {
    rx_lock_.unlock();
    return false;
  }
  out = rx_cq_.front();
  rx_cq_.pop_front();
  rx_cq_size_.fetch_sub(1, std::memory_order_release);
  rx_lock_.unlock();
  return true;
}

ChannelStats ShmemChannel::stats() const {
  stats_lock_.lock();
  const ChannelStats s = stats_;
  stats_lock_.unlock();
  return s;
}

std::size_t ShmemChannel::tx_backlog() const {
  return tx_backlog_.load(std::memory_order_acquire);
}

void ShmemChannel::quiesce() {
  if (peer_ == nullptr) return;  // unconnected: nothing can be in flight
  // There is no engine thread to wait for: "quiet" means every descriptor
  // this endpoint published has been consumed. The consumer role of both
  // ring directions is driven from here (locks serialize against live
  // pollers), so quiesce makes progress even when the peer's host never
  // polls again — the teardown case.
  sync::Backoff backoff;
  for (;;) {
    tx_lock_.lock();
    pump_tx_locked();
    tx_lock_.unlock();
    peer_->drain_rx();  // consume our published descriptors
    drain_rx();         // consume the peer's towards us
    tx_lock_.lock();
    bool idle = spill_.empty();
    for (const Msg* m : inflight_) {
      idle = idle && m->done.load(std::memory_order_acquire) != 0;
    }
    tx_lock_.unlock();
    if (idle) return;
    backoff.spin();
  }
}

// -------------------------------------------------------------- transport

ShmemTransport::ShmemTransport(ShmemConfig config) : config_(config) {
  bandwidth_ = config_.bandwidth_GBps > 0.0 ? config_.bandwidth_GBps
                                            : measured_memcpy_GBps();
}

std::pair<IChannel*, IChannel*> ShmemTransport::create_channel_pair(
    const std::string& name) {
  channels_.push_back(std::unique_ptr<ShmemChannel>(
      new ShmemChannel(name + ".a", config_, bandwidth_)));
  ShmemChannel* a = channels_.back().get();
  channels_.push_back(std::unique_ptr<ShmemChannel>(
      new ShmemChannel(name + ".b", config_, bandwidth_)));
  ShmemChannel* b = channels_.back().get();
  ShmemChannel::connect(*a, *b);
  return {a, b};
}

}  // namespace piom::transport
