// Transport-backend abstraction. nmad (gate, session, strategy) drives all
// rails through IChannel, so the communication library is independent of
// what actually moves the bytes:
//
//   * backend "simnet" — simnet::Nic, the modelled cluster NIC (engine
//     thread, link latency/bandwidth/drop model, RDMA served by hardware);
//   * backend "shmem"  — transport::ShmemChannel, an intra-node fast path
//     (lock-free SPSC descriptor rings, zero-copy delivery, no NIC
//     instruction round-trip).
//
// ITransport is the factory side: one implementation per backend
// (simnet::Fabric, transport::ShmemTransport). BackendPolicy decides, per
// rank pair of a mesh, which backend(s) wire the pair — the strategy
// layer's rail selection then picks among heterogeneous rails at runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace piom::transport {

enum class Backend : uint8_t {
  kSimnet = 0,  ///< modelled cluster NIC (simnet::Nic)
  kShmem = 1,   ///< intra-node shared-memory ring pair (ShmemChannel)
  /// Nonblocking sockets — TCP inter-node, Unix-domain same-host — behind
  /// the same interface (transport::TcpChannel): the backend that lets
  /// ranks live in separate OS processes.
  kTcp = 2,
};

[[nodiscard]] const char* backend_name(Backend b);

/// Completion queue entry (identical wire semantics for every backend).
struct Completion {
  enum class Kind : uint8_t { kSend, kRecv, kRdmaRead };
  Kind kind = Kind::kSend;
  uint64_t wrid = 0;      ///< work-request id supplied at post time
  std::size_t bytes = 0;  ///< payload size actually transferred
  /// True when the operation executed against a severed channel. Only
  /// RDMA reads report failure (their semantics are "data landed");
  /// severed sends still complete unfailed, mirroring the drop model —
  /// "sent" never means "delivered".
  bool failed = false;
};

/// Per-channel traffic counters (Fig-1 aggregation bench, saturation
/// analysis, and the backend-comparison bench).
struct ChannelStats {
  uint64_t packets_tx = 0;
  uint64_t packets_rx = 0;
  uint64_t bytes_tx = 0;
  uint64_t bytes_rx = 0;
  uint64_t rdma_reads_served = 0;  ///< served with zero host CPU
  uint64_t packets_dropped = 0;    ///< fault injection (simnet only)
};

/// One endpoint of a connected point-to-point channel ("a rail"). The
/// verbs/MX-like host interface the communication library programs against;
/// all methods are thread-safe.
class IChannel {
 public:
  virtual ~IChannel() = default;

  [[nodiscard]] virtual Backend backend() const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// The connected remote endpoint — nullptr when unconnected OR when the
  /// remote end lives in another process (socket channels). Test
  /// `connected()` for "usable", not `peer() != nullptr`.
  [[nodiscard]] virtual IChannel* peer() const = 0;
  /// True once the channel can carry traffic. In-process backends are
  /// connected exactly when they have a peer endpoint; cross-process
  /// socket channels are connected from construction (the fd handshake
  /// happened before the channel object existed).
  [[nodiscard]] virtual bool connected() const { return peer() != nullptr; }

  /// Post a message send. `buf` must stay valid until the kSend completion
  /// for `wrid` is polled (transfer is zero-copy: the backend reads the
  /// caller's buffer at delivery time).
  virtual void post_send(const void* buf, std::size_t len, uint64_t wrid) = 0;

  /// Post a receive buffer of capacity `cap`. Buffers match arrivals in
  /// FIFO order (connected queue pair; message matching is nmad's job).
  virtual void post_recv(void* buf, std::size_t cap, uint64_t wrid) = 0;

  /// Read `len` bytes from the peer's memory at `remote` into `local`
  /// without running peer host code (RDMA-Read / direct load).
  virtual void post_rdma_read(void* local, const void* remote,
                              std::size_t len, uint64_t wrid) = 0;

  /// Poll the send/rdma completion queue. True when `out` was filled.
  virtual bool poll_tx(Completion& out) = 0;

  /// Poll the receive completion queue.
  virtual bool poll_rx(Completion& out) = 0;

  [[nodiscard]] virtual ChannelStats stats() const = 0;

  /// Posted sends not yet executed/delivered (backpressure observability).
  [[nodiscard]] virtual std::size_t tx_backlog() const = 0;

  /// Block until every posted operation this endpoint can drive to
  /// completion has been executed. Teardown protocol: after quiescing an
  /// endpoint *and its peer*, the backend will not touch host buffers
  /// again (completions may still sit in the queues, ready to poll).
  virtual void quiesce() = 0;

  /// Fault hook: cut this endpoint off the wire. Subsequent (and queued)
  /// sends stop being delivered — they still drain with ordinary TX
  /// completions, like the drop model — inbound traffic towards this
  /// endpoint is discarded, and RDMA reads complete with failed = true.
  /// Irreversible, idempotent, thread-safe. Severing one endpoint models a
  /// one-direction link death; killing a host severs both ends of every
  /// channel touching it (World::kill_rank).
  virtual void sever() = 0;
  [[nodiscard]] virtual bool severed() const = 0;

  // ---- rail properties consumed by the strategy layer ----

  /// Sustained bandwidth estimate (GB/s) for stripe weighting.
  [[nodiscard]] virtual double bandwidth_GBps() const = 0;
  /// Small-message one-way latency estimate (µs) for eager rail selection.
  [[nodiscard]] virtual double latency_us() const = 0;
};

/// Factory side of a backend: owns its channels for their whole lifetime.
class ITransport {
 public:
  virtual ~ITransport() = default;

  [[nodiscard]] virtual Backend backend() const = 0;

  /// Create a connected endpoint pair named "<name>.a"/"<name>.b" (a = the
  /// lower rank's side, by mesh convention). Returned pointers stay valid
  /// as long as the transport lives.
  virtual std::pair<IChannel*, IChannel*> create_channel_pair(
      const std::string& name) = 0;

  [[nodiscard]] virtual std::size_t channel_count() const = 0;
};

/// How one rank pair of a mesh is wired.
enum class PairWiring : uint8_t {
  kSimnet = 0,  ///< NIC rails only (rails_per_pair of them)
  kShmem = 1,   ///< one shared-memory channel only
  /// Heterogeneous rails: rail 0 is the shmem fast path, rails 1..k are the
  /// NIC rails — eager traffic rides rail 0, bulk stripes across all.
  kHybrid = 2,
  kTcp = 3,  ///< one TCP socket channel (loopback sockets in-process)
  kUds = 4,  ///< one Unix-domain socket channel
};

[[nodiscard]] const char* pair_wiring_name(PairWiring w);

/// Per-pair backend selection for a full mesh (transport::Cluster): ranks
/// placed on the same node talk over `intra`, ranks on different nodes
/// over `inter`.
struct BackendPolicy {
  /// node_of[rank] = node hosting the rank (ids >= 0, need not be dense).
  /// Empty: every rank on its own node — unless $PIOM_TRANSPORT overrides
  /// (see from_env), which is how CI forces a whole suite onto one backend.
  std::vector<int> node_of;
  PairWiring intra = PairWiring::kShmem;
  PairWiring inter = PairWiring::kSimnet;

  /// Wiring for the unordered pair {i, j} (requires validate() passed).
  [[nodiscard]] PairWiring wiring(int i, int j) const;

  /// Throws std::invalid_argument on malformed policies: node_of size not
  /// matching `nranks` (when non-empty), negative node ids, or shared
  /// memory requested across nodes — `inter` must be a wiring that really
  /// crosses nodes (kSimnet, kTcp or kUds; never kShmem/kHybrid).
  void validate(int nranks) const;

  /// Policy for an `nranks` mesh honouring $PIOM_TRANSPORT:
  ///   unset / "simnet" — every pair over the NIC model (the default);
  ///   "shmem"          — every rank on one node, pairs pure shmem;
  ///   "hybrid"         — every rank on one node, shmem + NIC rails;
  ///   "tcp"            — every pair over a TCP loopback socket;
  ///   "uds"            — every pair over a Unix-domain socket.
  /// Throws std::invalid_argument on any other value (a whole suite run on
  /// the wrong backend is worse than refusing to run).
  [[nodiscard]] static BackendPolicy from_env(int nranks);
};

}  // namespace piom::transport
